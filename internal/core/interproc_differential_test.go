package core

import (
	"bytes"
	"testing"

	"closurex/internal/execmgr"
	"closurex/internal/targets"
)

// The restore-elision contract (§ DESIGN.md 10): scoping the harness'
// snapshot/restore/watchdog work to the analysis-proven may-write ranges
// must be invisible to the fuzzer. Same target, same trial seed, same exec
// count — the campaign with Interproc on must be bit-identical to the one
// with it off: same coverage map bytes, same corpus, same crash and hang
// buckets. Any divergence means the analysis let a state leak through, and
// this suite names the target it happened on.

const (
	interprocDiffSeed  = 0xD1FF
	interprocDiffExecs = 1000
	// interprocAuditExecs covers several audit cycles at AuditEveryDefault.
	interprocAuditExecs = 280
)

// campaignObs is everything observable about a finished campaign that does
// not depend on wall-clock time (Entry.FoundAt does, so whole-checkpoint
// byte comparison would be flaky; the coverage map, corpus inputs and
// fault buckets are the deterministic core).
type campaignObs struct {
	edges   int
	bitmap  []byte
	queue   [][]byte
	crashes []string
	hangs   []string
}

func observeCampaign(t *testing.T, tgt *targets.Target, interproc bool) *campaignObs {
	t.Helper()
	// DeterministicRand masks the modeled process-level nondeterminism
	// (each VM normally draws a fresh rand()/heap-ASLR seed, §6.1.4 —
	// freetype's hint jitter makes it visible). The paper's correctness
	// study masks it the same way; without this the off/on instances
	// would differ for reasons unrelated to elision.
	inst, err := NewInstance(tgt, "closurex", InstanceOptions{
		TrialSeed:         interprocDiffSeed,
		Interproc:         interproc,
		DeterministicRand: true,
	})
	if err != nil {
		t.Fatalf("%s interproc=%v: %v", tgt.Name, interproc, err)
	}
	defer inst.Close()
	inst.Campaign.RunExecs(interprocDiffExecs)
	obs := &campaignObs{
		edges:  inst.Campaign.Edges(),
		bitmap: inst.Campaign.BitmapSnapshot(),
	}
	for _, e := range inst.Campaign.Queue() {
		obs.queue = append(obs.queue, append([]byte(nil), e.Input...))
	}
	for _, c := range inst.Campaign.Crashes() {
		obs.crashes = append(obs.crashes, c.Key)
	}
	for _, h := range inst.Campaign.Hangs() {
		obs.hangs = append(obs.hangs, h.Key)
	}
	return obs
}

func TestInterprocDifferentialBitIdentical(t *testing.T) {
	all := targets.All()
	if len(all) == 0 {
		t.Fatal("no registered targets")
	}
	for _, tgt := range all {
		tgt := tgt
		t.Run(tgt.Short, func(t *testing.T) {
			off := observeCampaign(t, tgt, false)
			on := observeCampaign(t, tgt, true)
			if off.edges != on.edges {
				t.Errorf("edge counts diverge: off=%d on=%d", off.edges, on.edges)
			}
			if !bytes.Equal(off.bitmap, on.bitmap) {
				n := 0
				for i := range off.bitmap {
					if off.bitmap[i] != on.bitmap[i] {
						n++
					}
				}
				t.Errorf("coverage maps diverge in %d byte(s)", n)
			}
			if len(off.queue) != len(on.queue) {
				t.Fatalf("queue sizes diverge: off=%d on=%d", len(off.queue), len(on.queue))
			}
			for i := range off.queue {
				if !bytes.Equal(off.queue[i], on.queue[i]) {
					t.Fatalf("queue entry %d diverges", i)
				}
			}
			if !equalKeys(off.crashes, on.crashes) {
				t.Errorf("crash buckets diverge: off=%v on=%v", off.crashes, on.crashes)
			}
			if !equalKeys(off.hangs, on.hangs) {
				t.Errorf("hang buckets diverge: off=%v on=%v", off.hangs, on.hangs)
			}
		})
	}
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestInterprocAuditAllTargets runs every target with elision armed AND
// the runtime audit re-checking the full closure section (plus the
// must-free/must-close censuses) every AuditEveryDefault iterations. A
// single audit failure means the scoped restore missed real drift — the
// strongest runtime refutation of the static proofs this repo can produce.
func TestInterprocAuditAllTargets(t *testing.T) {
	armed := 0
	for _, tgt := range targets.All() {
		tgt := tgt
		t.Run(tgt.Short, func(t *testing.T) {
			inst, err := NewInstance(tgt, "closurex", InstanceOptions{
				TrialSeed:    interprocDiffSeed,
				Interproc:    true,
				AuditRestore: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer inst.Close()
			cx, ok := inst.Mech.(*execmgr.ClosureX)
			if !ok {
				t.Fatalf("mechanism %T is not *execmgr.ClosureX", inst.Mech)
			}
			h := cx.Harness()
			info := inst.Module.Interproc
			if info == nil {
				t.Fatal("InterprocPass left no module metadata")
			}
			// Elision arms exactly when the analysis bounded the write set
			// (whole-section targets legitimately keep the full restore and
			// their audit is then a trivially-passing cross-check).
			if h.ElisionActive() != !info.WholeSection {
				t.Fatalf("ElisionActive = %v with WholeSection = %v",
					h.ElisionActive(), info.WholeSection)
			}
			if h.ElisionActive() {
				armed++
				if h.ElisionRangeBytes() > h.GlobalSnapshotSize() {
					t.Error("may-write range exceeds the section snapshot")
				}
			}
			// Drive the harness directly: a campaign's crash respawns would
			// replace it (and zero the audit counters) mid-run.
			seeds := tgt.Seeds()
			if len(seeds) == 0 {
				t.Fatal("target has no seeds")
			}
			for i := 0; i < interprocAuditExecs; i++ {
				h.RunOne(seeds[i%len(seeds)])
			}
			st := h.Stats()
			if st.AuditRuns < 3 {
				t.Fatalf("only %d audit(s) ran over %d iterations", st.AuditRuns, interprocAuditExecs)
			}
			if st.AuditFailures != 0 {
				t.Errorf("%d audit failure(s): elided restore drifted", st.AuditFailures)
			}
			if st.ElidedLeaks != 0 || st.ElidedFDLeaks != 0 {
				t.Errorf("proof violations swept at runtime: %d heap, %d fd",
					st.ElidedLeaks, st.ElidedFDLeaks)
			}
		})
	}
	if armed == 0 {
		t.Error("no target armed elision — the audit suite is vacuous")
	}
}
