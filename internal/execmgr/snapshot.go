package execmgr

import (
	"closurex/internal/passes"
	"closurex/internal/vm"
)

// SnapshotLKM models the kernel-based snapshotting of the related work
// (AFL++ Snapshot LKM; Xu et al.): a single child is forked once from the
// template, and after every test case the kernel rolls its *dirty pages*
// back to the snapshot. Correct like a forkserver, and cheaper — restore
// cost is O(pages the test case touched) instead of O(all resident pages)
// — but still page-granular: it cannot beat ClosureX, which restores only
// the bytes that constitute test-case-specific state.
type SnapshotLKM struct {
	cfg      Config
	template *vm.VM
	child    *vm.VM
	execs    int64
	spawns   int64
	// dirtyTotal accumulates restored pages, for overhead reporting.
	dirtyTotal int64
}

// NewSnapshotLKM builds the template and takes the initial snapshot.
func NewSnapshotLKM(cfg Config) (*SnapshotLKM, error) {
	if err := checkModule(&cfg); err != nil {
		return nil, err
	}
	tmpl, err := vm.New(cfg.Module, cfg.vmOptions())
	if err != nil {
		return nil, err
	}
	s := &SnapshotLKM{cfg: cfg, template: tmpl, spawns: 1}
	s.child = tmpl.Fork()
	s.child.Mem.TrackDirty(true)
	s.spawns++
	return s, nil
}

// Name implements Mechanism.
func (s *SnapshotLKM) Name() string { return "snapshot-lkm" }

// Execute implements Mechanism.
func (s *SnapshotLKM) Execute(input []byte) vm.Result {
	s.child.SetInput(input)
	res := s.child.Call(passes.TargetMain)
	s.execs++
	// The snapshot restore handles every outcome — normal return, exit()
	// and crashes alike — because it rolls back all dirtied pages.
	s.dirtyTotal += int64(s.child.Mem.DirtyPages())
	s.child.RestoreFromSnapshot(s.template)
	return res
}

// DirtyPagesPerExec reports the mean restored pages per execution.
func (s *SnapshotLKM) DirtyPagesPerExec() float64 {
	if s.execs == 0 {
		return 0
	}
	return float64(s.dirtyTotal) / float64(s.execs)
}

// Execs implements Mechanism.
func (s *SnapshotLKM) Execs() int64 { return s.execs }

// Spawns implements Mechanism.
func (s *SnapshotLKM) Spawns() int64 { return s.spawns }

// Close implements Mechanism.
func (s *SnapshotLKM) Close() {
	s.child.Release()
	s.template.Release()
}

var _ Mechanism = (*SnapshotLKM)(nil)
