package execmgr

import (
	"testing"

	"closurex/internal/mem"
)

func TestSnapshotRestoresEverything(t *testing.T) {
	mech := newMech(t, "snapshot-lkm", statefulSrc)
	s := mech.(*SnapshotLKM)
	for i := 0; i < 50; i++ {
		// Alternate leaky, exiting and benign inputs; the snapshot restore
		// must erase all of it.
		for _, in := range []string{"L", "E", "a"} {
			res := mech.Execute([]byte(in))
			if res.Fault != nil {
				t.Fatalf("iter %d/%s: %v", i, in, res.Fault)
			}
			if in == "a" && res.Ret != 100+'a' {
				t.Fatalf("iter %d: stale state: %d", i, res.Ret)
			}
		}
		if got := s.child.Heap.LiveChunks(); got != 0 {
			t.Fatalf("iter %d: %d chunks survived restore", i, got)
		}
		if got := s.child.FS.OpenCount(); got != 0 {
			t.Fatalf("iter %d: %d FDs survived restore", i, got)
		}
	}
	// Exactly one template + one snapshot child for the whole run.
	if mech.Spawns() != 2 {
		t.Fatalf("Spawns = %d, want 2", mech.Spawns())
	}
	if s.DirtyPagesPerExec() <= 0 {
		t.Fatal("dirty-page accounting missing")
	}
}

func TestSnapshotDirtyPagesBounded(t *testing.T) {
	// The point of page-granular snapshotting: restore cost tracks what
	// the test case touched, not the image size.
	m := buildModule(t, statefulSrc, false)
	mech, err := New("snapshot-lkm", Config{Module: m, ImagePages: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer mech.Close()
	s := mech.(*SnapshotLKM)
	for i := 0; i < 20; i++ {
		mech.Execute([]byte("a"))
	}
	if avg := s.DirtyPagesPerExec(); avg > 64 {
		t.Fatalf("dirty pages per exec = %.1f — restore cost scales with image size?", avg)
	}
}

func TestSnapshotChildSharesCleanPagesAfterRestore(t *testing.T) {
	mech := newMech(t, "snapshot-lkm", statefulSrc)
	s := mech.(*SnapshotLKM)
	mech.Execute([]byte("a"))
	// After restore, the child must not hold private copies: page counts
	// return to the forked state and no dirty entries remain.
	if s.child.Mem.DirtyPages() != 0 {
		t.Fatalf("dirty list not drained: %d", s.child.Mem.DirtyPages())
	}
	if got, want := s.child.Mem.Pages(), s.template.Mem.Pages(); got > want {
		t.Fatalf("child kept extra pages after restore: %d > %d", got, want)
	}
}

func TestMemRestoreToModel(t *testing.T) {
	parent := mem.NewMemory()
	base := uint64(0x20000)
	if err := parent.Write(base, []byte("snapshot-content-123")); err != nil {
		t.Fatal(err)
	}
	child := parent.Fork()
	defer child.Release()
	child.TrackDirty(true)
	// Dirty a shared page, map a brand-new page, then restore.
	if err := child.Write(base, []byte("OVERWRITTEN")); err != nil {
		t.Fatal(err)
	}
	if err := child.Write(base+1024*mem.PageSize, []byte("new page")); err != nil {
		t.Fatal(err)
	}
	if child.DirtyPages() != 2 {
		t.Fatalf("dirty = %d, want 2", child.DirtyPages())
	}
	child.RestoreTo(parent)
	got, _ := child.Read(base, 20)
	if string(got) != "snapshot-content-123" {
		t.Fatalf("restore failed: %q", got)
	}
	got, _ = child.Read(base+1024*mem.PageSize, 8)
	for _, b := range got {
		if b != 0 {
			t.Fatalf("new page survived restore: %q", got)
		}
	}
	// Parent untouched throughout.
	got, _ = parent.Read(base, 20)
	if string(got) != "snapshot-content-123" {
		t.Fatalf("parent corrupted: %q", got)
	}
}
