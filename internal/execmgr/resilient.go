package execmgr

import (
	"fmt"

	"closurex/internal/vm"
)

// ResilienceConfig tunes the quarantine/rebuild/fallback ladder that keeps
// a long-running persistent campaign alive when its restore machinery
// degrades (the failure mode harness-degradation studies show dominates
// real-world long campaigns).
type ResilienceConfig struct {
	// WatchdogEvery runs harness.Verify after every N executions
	// (default 64). The restore-error poll is per-execution regardless.
	WatchdogEvery int
	// MaxRebuilds is how many consecutive rebuild attempts are made before
	// the mechanism degrades to a forkserver (default 3).
	MaxRebuilds int
	// BackoffBase is the watchdog cooldown, in executions, after the first
	// rebuild; it doubles per consecutive failure (default WatchdogEvery).
	BackoffBase int
}

// DefaultResilienceConfig returns the production ladder settings.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{WatchdogEvery: 64, MaxRebuilds: 3}
}

// Event records one resilience action, for diagnostics and tests.
type Event struct {
	Exec   int64  // execution index when the event fired
	Kind   string // "restore-failure" | "watchdog" | "rebuild" | "degrade"
	Detail string
}

// Resilient wraps the ClosureX mechanism with the self-checking ladder:
//
//	restore error / watchdog violation
//	    → quarantine the input, rebuild the process image (backoff)
//	repeated failure (> MaxRebuilds consecutive)
//	    → degrade to ForkServer and keep the campaign running
//
// The fallback runs the same instrumented module against the same coverage
// map, so campaign coverage stays monotone across the transition — the
// campaign driver never notices beyond the throughput drop.
type Resilient struct {
	cfg  Config
	rcfg ResilienceConfig

	cx *ClosureX   // primary; released once degraded
	fb *ForkServer // fallback; built on degrade

	execs        int64
	sinceCheck   int
	cooldown     int // executions left before the watchdog re-arms
	consecFail   int
	rebuilds     int64
	restoreFails int64
	degraded     bool
	reason       string

	quarantined [][]byte
	events      []Event
}

// NewResilient builds the primary ClosureX mechanism under the ladder.
func NewResilient(cfg Config, rcfg ResilienceConfig) (*Resilient, error) {
	if rcfg.WatchdogEvery <= 0 {
		rcfg.WatchdogEvery = 64
	}
	if rcfg.MaxRebuilds <= 0 {
		rcfg.MaxRebuilds = 3
	}
	if rcfg.BackoffBase <= 0 {
		rcfg.BackoffBase = rcfg.WatchdogEvery
	}
	cx, err := NewClosureX(cfg)
	if err != nil {
		return nil, err
	}
	return &Resilient{cfg: cfg, rcfg: rcfg, cx: cx}, nil
}

// Name implements Mechanism.
func (r *Resilient) Name() string {
	if r.degraded {
		return "closurex-resilient(forkserver)"
	}
	return "closurex-resilient"
}

// Execute implements Mechanism: run the test case, then poll the restore
// path and (periodically) the watchdog, feeding violations into the ladder.
func (r *Resilient) Execute(input []byte) vm.Result {
	r.execs++
	if r.degraded {
		return r.fb.Execute(input)
	}
	res := r.cx.Execute(input)
	if err := r.cx.Harness().TakeRestoreError(); err != nil {
		// The iteration's own result stands; the image does not. Quarantine
		// the input that was executing when restoration failed — it is the
		// prime suspect for having driven the target into the bad state.
		r.quarantined = append(r.quarantined, append([]byte(nil), input...))
		r.restoreFails++
		r.event("restore-failure", err.Error())
		r.rebuild("restore failure: " + err.Error())
		return res
	}
	if r.cooldown > 0 {
		r.cooldown--
		return res
	}
	r.sinceCheck++
	if r.sinceCheck >= r.rcfg.WatchdogEvery {
		r.sinceCheck = 0
		if err := r.cx.Harness().Verify(); err != nil {
			r.event("watchdog", err.Error())
			r.rebuild("watchdog: " + err.Error())
		} else {
			// A clean bill of health closes out any failure streak.
			r.consecFail = 0
		}
	}
	return res
}

// Rebuild lets the campaign's divergence sentinel feed into the same
// ladder: one rebuild attempt, counting toward the degradation bound.
func (r *Resilient) Rebuild(reason string) {
	if r.degraded {
		return
	}
	r.rebuild(reason)
}

// Degrade forces the fallback transition (sentinel exhausted its retries).
func (r *Resilient) Degrade(reason string) {
	if r.degraded {
		return
	}
	r.degrade(reason)
}

// Degraded reports whether the mechanism has fallen back to the forkserver.
func (r *Resilient) Degraded() bool { return r.degraded }

// rebuild replaces the persistent image, with exponential backoff on the
// watchdog so a flapping image converges to degradation instead of
// thrashing.
func (r *Resilient) rebuild(reason string) {
	r.consecFail++
	if r.consecFail > r.rcfg.MaxRebuilds {
		r.degrade(fmt.Sprintf("%d consecutive rebuilds; last: %s", r.consecFail-1, reason))
		return
	}
	if err := r.cx.respawn(); err != nil {
		r.degrade("rebuild failed: " + err.Error())
		return
	}
	r.rebuilds++
	r.cooldown = r.rcfg.BackoffBase << (r.consecFail - 1)
	r.sinceCheck = 0
	r.event("rebuild", reason)
}

// degrade swaps in a ForkServer over the same module and coverage map.
func (r *Resilient) degrade(reason string) {
	fb, err := NewForkServer(r.cfg)
	if err != nil {
		// Nothing to fall back onto; keep limping on the primary.
		r.event("degrade", "fallback construction failed: "+err.Error())
		r.consecFail = 0
		return
	}
	r.cx.Close()
	r.fb = fb
	r.degraded = true
	r.reason = reason
	r.event("degrade", reason)
}

func (r *Resilient) event(kind, detail string) {
	r.events = append(r.events, Event{Exec: r.execs, Kind: kind, Detail: detail})
}

// Harness exposes the primary's runtime while it is alive (nil once
// degraded).
func (r *Resilient) Harness() interface{ Verify() error } {
	if r.degraded {
		return nil
	}
	return r.cx.Harness()
}

// Rebuilds returns how many times the persistent image was rebuilt.
func (r *Resilient) Rebuilds() int64 { return r.rebuilds }

// RestoreFailures returns how many executions ended with a restore error —
// the shard-health telemetry a fleet supervisor watches for harness rot.
func (r *Resilient) RestoreFailures() int64 { return r.restoreFails }

// DegradedReason returns why the fallback engaged ("" while healthy).
func (r *Resilient) DegradedReason() string { return r.reason }

// Quarantined returns the inputs pulled aside by restore failures.
func (r *Resilient) Quarantined() [][]byte { return r.quarantined }

// Events returns the resilience action log.
func (r *Resilient) Events() []Event { return r.events }

// Execs implements Mechanism.
func (r *Resilient) Execs() int64 { return r.execs }

// Spawns implements Mechanism: images built by whichever side is active.
func (r *Resilient) Spawns() int64 {
	n := r.cx.Spawns()
	if r.fb != nil {
		n += r.fb.Spawns()
	}
	return n
}

// Close implements Mechanism.
func (r *Resilient) Close() {
	if r.degraded {
		r.fb.Close()
		return
	}
	r.cx.Close()
}

var _ Mechanism = (*Resilient)(nil)
