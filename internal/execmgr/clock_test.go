package execmgr

import "time"

// nowNs is a monotonic nanosecond clock for throughput tests.
func nowNs() int64 { return time.Now().UnixNano() }
