// Package execmgr implements the paper's execution-mechanism spectrum
// behind one interface:
//
//	Fresh           one process image per test case (system()/fork+exec)
//	ForkServer      AFL++'s default: CoW fork of a paused template image
//	PersistentNaive AFL++ persistent mode without state restoration —
//	                fast but semantically inconsistent (the paper's foil)
//	ClosureX        persistent execution with fine-grain state restoration
//
// The costs are real work in the simulator: Fresh re-materializes the whole
// image, ForkServer copies the page table and faults dirty pages, ClosureX
// restores only the closure_global_section bytes, leaked chunks and FDs.
package execmgr

import (
	"fmt"

	"closurex/internal/faultinject"
	"closurex/internal/harness"
	"closurex/internal/ir"
	"closurex/internal/passes"
	"closurex/internal/vm"

	// Register the compiled closure-chain backend so Config.Backend can
	// name it ("compiled") for every mechanism.
	_ "closurex/internal/vm/compile"
)

// Config describes how to run a target under any mechanism.
type Config struct {
	// Module must already be instrumented (at minimum RenameMainPass +
	// CoveragePass; the ClosureX mechanism additionally requires the full
	// pipeline so its hooks are in place).
	Module *ir.Module
	// CovMap receives AFL-style hit counts (64 KiB); may be nil.
	CovMap []byte
	// Budget bounds instructions per execution (hang detection).
	Budget int64
	// Files pre-populates the VFS (configs etc.; the input is per-exec).
	Files map[string][]byte
	// FDLimit overrides the descriptor limit.
	FDLimit int
	// ImagePages sizes the simulated executable image (Table 4).
	ImagePages int
	// TraceEdges enables path-sensitive tracing (correctness study).
	TraceEdges bool
	// DeterministicRand/RandSeed pin the rand() builtin.
	DeterministicRand bool
	RandSeed          uint64
	// Sanitize attaches the ASan-style shadow plane to every VM this
	// mechanism builds. The module should carry SanitizerPass checks too
	// (shadow alone only enriches allocator-detected faults).
	Sanitize bool
	// HarnessOpts selects which state ClosureX restores (ablations).
	// Zero value means harness.FullRestore().
	HarnessOpts *harness.Options
	// RestartEvery bounds iterations per persistent process, like
	// __AFL_LOOP(1000). Applies to PersistentNaive. Default 1000.
	RestartEvery int
	// Injector arms deterministic fault injection in the VM (heap, files)
	// and the harness restore paths; nil injects nothing.
	Injector *faultinject.Injector
	// Backend selects the VM execution engine ("" or "interp" for the
	// reference interpreter, "compiled" for the closure-chain tier). Every
	// VM the mechanism builds — template, forks, respawns — uses it.
	Backend string
}

func (c *Config) vmOptions() vm.Options {
	return vm.Options{
		CovMap:            c.CovMap,
		Budget:            c.Budget,
		Files:             c.Files,
		FDLimit:           c.FDLimit,
		PageLimit:         0,
		ImagePages:        c.ImagePages,
		TraceEdges:        c.TraceEdges,
		DeterministicRand: c.DeterministicRand,
		RandSeed:          c.RandSeed,
		Sanitize:          c.Sanitize,
		Injector:          c.Injector,
		Backend:           c.Backend,
	}
}

// Mechanism runs test cases under one execution strategy.
type Mechanism interface {
	// Name identifies the mechanism ("fresh", "forkserver", ...).
	Name() string
	// Execute runs one test case to completion.
	Execute(input []byte) vm.Result
	// Execs returns how many test cases have been executed.
	Execs() int64
	// Spawns returns how many process images have been built or forked —
	// the process-management cost driver.
	Spawns() int64
	// Close releases resources.
	Close()
}

// New constructs a mechanism by name.
func New(name string, cfg Config) (Mechanism, error) {
	switch name {
	case "fresh":
		return NewFresh(cfg)
	case "forkserver":
		return NewForkServer(cfg)
	case "snapshot-lkm":
		return NewSnapshotLKM(cfg)
	case "persistent-naive":
		return NewPersistentNaive(cfg)
	case "closurex":
		return NewClosureX(cfg)
	case "closurex-resilient":
		return NewResilient(cfg, DefaultResilienceConfig())
	}
	return nil, fmt.Errorf("execmgr: unknown mechanism %q", name)
}

// Names lists the available mechanisms in spectrum order: heavier state
// restoration first.
func Names() []string {
	return []string{"fresh", "forkserver", "snapshot-lkm", "persistent-naive", "closurex"}
}

func checkModule(cfg *Config) error {
	if cfg.Module == nil {
		return fmt.Errorf("execmgr: nil module")
	}
	if cfg.Module.Func(passes.TargetMain) == nil {
		return fmt.Errorf("execmgr: module lacks %s; run the pass pipeline", passes.TargetMain)
	}
	// Stamp call pre-resolution before the first VM touches the module:
	// idempotent (no-op when already resolved at commit time), and both
	// backends dispatch through the cached indices.
	vm.ResolveModule(cfg.Module)
	return nil
}

// ---- Fresh ----

// Fresh builds a complete process image for every test case — the
// system()/fork+exec end of the spectrum.
type Fresh struct {
	cfg    Config
	execs  int64
	spawns int64
}

// NewFresh returns the fresh-process mechanism.
func NewFresh(cfg Config) (*Fresh, error) {
	if err := checkModule(&cfg); err != nil {
		return nil, err
	}
	return &Fresh{cfg: cfg}, nil
}

// Name implements Mechanism.
func (f *Fresh) Name() string { return "fresh" }

// Execute implements Mechanism.
func (f *Fresh) Execute(input []byte) vm.Result {
	v, err := vm.New(f.cfg.Module, f.cfg.vmOptions())
	if err != nil {
		return vm.Result{Fault: &vm.Fault{Kind: vm.FaultOOM, Fn: "loader", Msg: err.Error()}}
	}
	f.spawns++
	v.SetInput(input)
	res := v.Call(passes.TargetMain)
	v.Release()
	f.execs++
	return res
}

// Execs implements Mechanism.
func (f *Fresh) Execs() int64 { return f.execs }

// Spawns implements Mechanism.
func (f *Fresh) Spawns() int64 { return f.spawns }

// Close implements Mechanism.
func (f *Fresh) Close() {}

// ---- ForkServer ----

// ForkServer keeps a template image paused "at main" and CoW-forks it per
// test case, as AFL++'s forkserver does.
type ForkServer struct {
	cfg      Config
	template *vm.VM
	execs    int64
	spawns   int64
}

// NewForkServer builds the template image once.
func NewForkServer(cfg Config) (*ForkServer, error) {
	if err := checkModule(&cfg); err != nil {
		return nil, err
	}
	tmpl, err := vm.New(cfg.Module, cfg.vmOptions())
	if err != nil {
		return nil, err
	}
	return &ForkServer{cfg: cfg, template: tmpl, spawns: 1}, nil
}

// Name implements Mechanism.
func (f *ForkServer) Name() string { return "forkserver" }

// Execute implements Mechanism.
func (f *ForkServer) Execute(input []byte) vm.Result {
	child := f.template.Fork()
	f.spawns++
	child.SetInput(input)
	res := child.Call(passes.TargetMain)
	child.Release()
	f.execs++
	return res
}

// Execs implements Mechanism.
func (f *ForkServer) Execs() int64 { return f.execs }

// Spawns implements Mechanism.
func (f *ForkServer) Spawns() int64 { return f.spawns }

// Close implements Mechanism.
func (f *ForkServer) Close() { f.template.Release() }

// ---- PersistentNaive ----

// PersistentNaive reuses one forked child for up to RestartEvery test cases
// with NO state restoration — AFL++ persistent mode on a target that was
// never manually reset. It is fast and semantically inconsistent: stale
// globals, leaked chunks and leaked descriptors accumulate until the child
// is recycled (crash, exit() or the __AFL_LOOP bound).
type PersistentNaive struct {
	cfg      Config
	template *vm.VM
	child    *vm.VM
	iters    int
	execs    int64
	spawns   int64
}

// NewPersistentNaive builds the template and the first child.
func NewPersistentNaive(cfg Config) (*PersistentNaive, error) {
	if err := checkModule(&cfg); err != nil {
		return nil, err
	}
	if cfg.RestartEvery <= 0 {
		cfg.RestartEvery = 1000
	}
	tmpl, err := vm.New(cfg.Module, cfg.vmOptions())
	if err != nil {
		return nil, err
	}
	p := &PersistentNaive{cfg: cfg, template: tmpl, spawns: 1}
	p.respawn()
	return p, nil
}

func (p *PersistentNaive) respawn() {
	if p.child != nil {
		p.child.Release()
	}
	p.child = p.template.Fork()
	p.spawns++
	p.iters = 0
}

// Name implements Mechanism.
func (p *PersistentNaive) Name() string { return "persistent-naive" }

// Execute implements Mechanism.
func (p *PersistentNaive) Execute(input []byte) vm.Result {
	p.child.SetInput(input)
	res := p.child.Call(passes.TargetMain)
	p.execs++
	p.iters++
	// A crash or exit() kills the persistent process; the __AFL_LOOP bound
	// recycles it. Either way the next test case gets a new child.
	if res.Crashed() || res.Exited || p.iters >= p.cfg.RestartEvery {
		p.respawn()
	}
	return res
}

// Execs implements Mechanism.
func (p *PersistentNaive) Execs() int64 { return p.execs }

// Spawns implements Mechanism.
func (p *PersistentNaive) Spawns() int64 { return p.spawns }

// Close implements Mechanism.
func (p *PersistentNaive) Close() {
	if p.child != nil {
		p.child.Release()
	}
	p.template.Release()
}

// ---- ClosureX ----

// ClosureX runs the whole campaign in one process image, restoring
// fine-grain state between test cases via the harness. Only a crash forces
// a process respawn (a sanitizer report aborts the process, as it would
// under AFL++).
type ClosureX struct {
	cfg    Config
	h      *harness.Harness
	execs  int64
	spawns int64
}

// NewClosureX validates that the ClosureX hooks are present and builds the
// single long-lived image.
func NewClosureX(cfg Config) (*ClosureX, error) {
	if err := checkModule(&cfg); err != nil {
		return nil, err
	}
	if n := countCalls(cfg.Module, "exit"); n > 0 {
		return nil, fmt.Errorf("execmgr: module has %d unhooked exit() calls; run the ClosureX pipeline", n)
	}
	c := &ClosureX{cfg: cfg}
	if err := c.respawn(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *ClosureX) respawn() error {
	v, err := vm.New(c.cfg.Module, c.cfg.vmOptions())
	if err != nil {
		return err
	}
	opts := harness.FullRestore()
	if c.cfg.HarnessOpts != nil {
		opts = *c.cfg.HarnessOpts
	}
	if opts.Injector == nil {
		opts.Injector = c.cfg.Injector
	}
	h, err := harness.New(v, opts)
	if err != nil {
		return err
	}
	if c.h != nil {
		c.h.VM().Release()
	}
	c.h = h
	c.spawns++
	return nil
}

// Name implements Mechanism.
func (c *ClosureX) Name() string { return "closurex" }

// Execute implements Mechanism.
func (c *ClosureX) Execute(input []byte) vm.Result {
	res := c.h.RunOne(input)
	c.execs++
	if res.Crashed() {
		if err := c.respawn(); err != nil {
			// Leave the old harness in place; subsequent runs still work.
			return res
		}
	}
	return res
}

// Harness exposes the runtime (stats, correctness probes).
func (c *ClosureX) Harness() *harness.Harness { return c.h }

// Execs implements Mechanism.
func (c *ClosureX) Execs() int64 { return c.execs }

// Spawns implements Mechanism.
func (c *ClosureX) Spawns() int64 { return c.spawns }

// Close implements Mechanism.
func (c *ClosureX) Close() { c.h.VM().Release() }

// countCalls counts direct calls of name in the module.
func countCalls(m *ir.Module, name string) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpCall && b.Instrs[i].Callee == name {
					n++
				}
			}
		}
	}
	return n
}

// ensure interface compliance.
var (
	_ Mechanism = (*Fresh)(nil)
	_ Mechanism = (*ForkServer)(nil)
	_ Mechanism = (*PersistentNaive)(nil)
	_ Mechanism = (*ClosureX)(nil)
)
