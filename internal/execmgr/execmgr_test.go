package execmgr

import (
	"testing"

	"closurex/internal/ir"
	"closurex/internal/lower"
	"closurex/internal/passes"
	"closurex/internal/vm"
)

// statefulSrc returns 100*runs + first input byte; leaks a chunk and an FD
// when the first byte is 'L'; crashes (null deref) when it is 'C'; exits
// when it is 'E'.
const statefulSrc = `
int runs;
int main(void) {
	runs++;
	int f = fopen("/input", "r");
	if (!f) abort();
	int c = fgetc(f);
	if (c < 0) c = 0;
	if (c == 'C') {
		int *p = 0;
		return *p;
	}
	if (c == 'E') exit(5);
	if (c == 'L') {
		char *leak = (char*)malloc(32);
		leak[0] = 1;
		return 100 * runs + c;
	}
	fclose(f);
	return 100 * runs + c;
}
`

// buildModule compiles src with the pipeline appropriate for mechanism.
func buildModule(t *testing.T, src string, closureX bool) *ir.Module {
	t.Helper()
	m, err := lower.Compile("t.c", src, vm.Builtins())
	if err != nil {
		t.Fatal(err)
	}
	pm := passes.NewManager(vm.Builtins())
	if closureX {
		pm.Add(passes.ClosureXPipeline(false)...)
		pm.Add(passes.NewCoveragePass(1))
	} else {
		pm.Add(passes.CoverageOnlyPipeline(1)...)
	}
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func newMech(t *testing.T, name, src string) Mechanism {
	t.Helper()
	m := buildModule(t, src, name == "closurex")
	mech, err := New(name, Config{Module: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mech.Close)
	return mech
}

func TestUnknownMechanism(t *testing.T) {
	if _, err := New("warp-drive", Config{}); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestRequiresInstrumentedModule(t *testing.T) {
	m, _ := lower.Compile("t.c", "int main(void) { return 0; }", vm.Builtins())
	for _, name := range Names() {
		if _, err := New(name, Config{Module: m}); err == nil {
			t.Errorf("%s accepted module without target_main", name)
		}
	}
}

func TestClosureXRejectsUnhookedExit(t *testing.T) {
	m := buildModule(t, statefulSrc, false) // coverage-only: exit not hooked
	if _, err := NewClosureX(Config{Module: m}); err == nil {
		t.Fatal("ClosureX accepted module with raw exit calls")
	}
}

// Correct mechanisms must make every execution look like the first:
// runs == 1 every time.
func TestIsolationOfCorrectMechanisms(t *testing.T) {
	for _, name := range []string{"fresh", "forkserver", "snapshot-lkm", "closurex"} {
		t.Run(name, func(t *testing.T) {
			mech := newMech(t, name, statefulSrc)
			for i := 0; i < 10; i++ {
				res := mech.Execute([]byte("a"))
				if res.Fault != nil {
					t.Fatalf("exec %d fault: %v", i, res.Fault)
				}
				if res.Ret != 100+'a' {
					t.Fatalf("exec %d = %d, want %d (stale state?)", i, res.Ret, 100+'a')
				}
			}
			if mech.Execs() != 10 {
				t.Fatalf("Execs = %d", mech.Execs())
			}
		})
	}
}

// The naive persistent mechanism must exhibit the stale-state pathology.
func TestNaivePersistentLeaksState(t *testing.T) {
	mech := newMech(t, "persistent-naive", statefulSrc)
	r1 := mech.Execute([]byte("a"))
	r2 := mech.Execute([]byte("a"))
	if r1.Ret != 100+'a' {
		t.Fatalf("first exec = %d", r1.Ret)
	}
	if r2.Ret != 200+'a' {
		t.Fatalf("second exec = %d, want stale-state %d", r2.Ret, 200+'a')
	}
}

func TestNaivePersistentRecyclesOnExitAndCrash(t *testing.T) {
	mech := newMech(t, "persistent-naive", statefulSrc)
	base := mech.Spawns()
	res := mech.Execute([]byte("E"))
	if !res.Exited || res.ExitCode != 5 {
		t.Fatalf("res = %+v", res)
	}
	if mech.Spawns() != base+1 {
		t.Fatalf("no respawn after exit: %d", mech.Spawns())
	}
	// After recycling, state is fresh again.
	if r := mech.Execute([]byte("a")); r.Ret != 100+'a' {
		t.Fatalf("after respawn = %d", r.Ret)
	}
	res = mech.Execute([]byte("C"))
	if res.Fault == nil || res.Fault.Kind != vm.FaultNullDeref {
		t.Fatalf("crash input: %+v", res)
	}
	if r := mech.Execute([]byte("a")); r.Ret != 100+'a' {
		t.Fatalf("after crash respawn = %d", r.Ret)
	}
}

func TestNaivePersistentRestartEvery(t *testing.T) {
	m := buildModule(t, statefulSrc, false)
	mech, err := New("persistent-naive", Config{Module: m, RestartEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer mech.Close()
	// Pattern: 1,2,3 then recycle, 1,2,3, ...
	want := []int64{1, 2, 3, 1, 2, 3, 1}
	for i, w := range want {
		res := mech.Execute([]byte("a"))
		if res.Ret != 100*w+'a' {
			t.Fatalf("exec %d = %d, want %d", i, res.Ret, 100*w+'a')
		}
	}
}

func TestCrashDetectionAcrossMechanisms(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			mech := newMech(t, name, statefulSrc)
			res := mech.Execute([]byte("C"))
			if res.Fault == nil || res.Fault.Kind != vm.FaultNullDeref {
				t.Fatalf("fault = %v, want NullDeref", res.Fault)
			}
			// The mechanism survives the crash and keeps executing.
			res = mech.Execute([]byte("b"))
			if res.Fault != nil || res.Ret != 100+'b' {
				t.Fatalf("post-crash exec: %+v", res)
			}
		})
	}
}

func TestClosureXSingleProcessAcrossManyExecs(t *testing.T) {
	mech := newMech(t, "closurex", statefulSrc)
	for i := 0; i < 500; i++ {
		in := []byte("L") // leaks a chunk and an FD every run
		if res := mech.Execute(in); res.Fault != nil {
			t.Fatalf("exec %d fault: %v", i, res.Fault)
		}
	}
	if mech.Spawns() != 1 {
		t.Fatalf("Spawns = %d, want 1 (single process for the campaign)", mech.Spawns())
	}
	cx := mech.(*ClosureX)
	if got := cx.Harness().VM().Heap.LiveChunks(); got != 0 {
		t.Fatalf("live chunks after campaign: %d", got)
	}
	if got := cx.Harness().VM().FS.OpenCount(); got != 0 {
		t.Fatalf("open FDs after campaign: %d", got)
	}
}

func TestForkServerSpawnAccounting(t *testing.T) {
	mech := newMech(t, "forkserver", statefulSrc)
	for i := 0; i < 7; i++ {
		mech.Execute([]byte("a"))
	}
	// 1 template + 7 children.
	if mech.Spawns() != 8 {
		t.Fatalf("Spawns = %d, want 8", mech.Spawns())
	}
}

func TestFreshSpawnAccounting(t *testing.T) {
	mech := newMech(t, "fresh", statefulSrc)
	for i := 0; i < 5; i++ {
		mech.Execute([]byte("a"))
	}
	if mech.Spawns() != 5 || mech.Execs() != 5 {
		t.Fatalf("Spawns=%d Execs=%d", mech.Spawns(), mech.Execs())
	}
}

func TestCoverageFlowsThroughMechanisms(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			m := buildModule(t, statefulSrc, name == "closurex")
			cov := make([]byte, 1<<16)
			mech, err := New(name, Config{Module: m, CovMap: cov})
			if err != nil {
				t.Fatal(err)
			}
			defer mech.Close()
			mech.Execute([]byte("a"))
			nonzero := 0
			for _, c := range cov {
				if c != 0 {
					nonzero++
				}
			}
			if nonzero == 0 {
				t.Fatal("no coverage recorded")
			}
		})
	}
}

// Differential check: for inputs that do not crash, all three correct
// mechanisms agree on the result, and ClosureX agrees with fresh-process
// execution even after many intervening runs.
func TestMechanismEquivalence(t *testing.T) {
	freshM := newMech(t, "fresh", statefulSrc)
	forkM := newMech(t, "forkserver", statefulSrc)
	cxM := newMech(t, "closurex", statefulSrc)
	inputs := [][]byte{[]byte("a"), []byte("z"), []byte("L"), []byte("E"), {}, {0x7f}}
	for _, in := range inputs {
		rf := freshM.Execute(in)
		rk := forkM.Execute(in)
		rc := cxM.Execute(in)
		if rf.Ret != rk.Ret || rf.Ret != rc.Ret ||
			rf.Exited != rc.Exited || rf.ExitCode != rc.ExitCode {
			t.Fatalf("divergence on %q: fresh=%+v fork=%+v closurex=%+v", in, rf, rk, rc)
		}
	}
}

// Throughput shape: ClosureX must beat the forkserver, which must beat
// fresh-process execution, on a realistic image size.
func TestThroughputOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison")
	}
	const pages = 512 // ~2 MiB image, mid-range for Table 4
	timeN := func(name string, n int) float64 {
		m := buildModule(t, statefulSrc, name == "closurex")
		mech, err := New(name, Config{Module: m, ImagePages: pages})
		if err != nil {
			t.Fatal(err)
		}
		defer mech.Close()
		start := nowNs()
		for i := 0; i < n; i++ {
			mech.Execute([]byte("a"))
		}
		return float64(nowNs()-start) / float64(n)
	}
	const n = 300
	fresh := timeN("fresh", n)
	fork := timeN("forkserver", n)
	cx := timeN("closurex", n)
	t.Logf("ns/exec: fresh=%.0f forkserver=%.0f closurex=%.0f", fresh, fork, cx)
	if !(cx < fork && fork < fresh) {
		t.Fatalf("ordering violated: fresh=%.0f fork=%.0f closurex=%.0f", fresh, fork, cx)
	}
}
