package execmgr

import (
	"strings"
	"testing"

	"closurex/internal/faultinject"
	"closurex/internal/fuzz"
)

func newResilient(t *testing.T, inj *faultinject.Injector, rcfg ResilienceConfig, cov []byte) *Resilient {
	t.Helper()
	m := buildModule(t, statefulSrc, true)
	r, err := NewResilient(Config{Module: m, CovMap: cov, Injector: inj}, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestRestoreFailureQuarantinesAndRebuilds(t *testing.T) {
	inj := faultinject.New(7)
	r := newResilient(t, inj, ResilienceConfig{WatchdogEvery: 4, MaxRebuilds: 3}, nil)

	if res := r.Execute([]byte("a")); res.Fault != nil || res.Ret != 100+'a' {
		t.Fatalf("clean exec: %+v", res)
	}
	if len(r.Events()) != 0 {
		t.Fatalf("events on a healthy run: %v", r.Events())
	}

	// One injected restore failure: the iteration's result stands, the
	// input is quarantined, the image is rebuilt.
	inj.FailAfter(faultinject.RestoreGlobals, 0, 1)
	if res := r.Execute([]byte("b")); res.Fault != nil || res.Ret != 100+'b' {
		t.Fatalf("failing exec's own result corrupted: %+v", res)
	}
	if r.Rebuilds() != 1 {
		t.Fatalf("Rebuilds = %d, want 1", r.Rebuilds())
	}
	q := r.Quarantined()
	if len(q) != 1 || string(q[0]) != "b" {
		t.Fatalf("Quarantined = %q, want [b]", q)
	}
	if r.Degraded() {
		t.Fatalf("degraded after a single failure: %s", r.DegradedReason())
	}

	// The rebuilt image serves clean, isolated executions again.
	for i := 0; i < 5; i++ {
		if res := r.Execute([]byte("a")); res.Fault != nil || res.Ret != 100+'a' {
			t.Fatalf("post-rebuild exec %d: %+v", i, res)
		}
	}
	kinds := []string{}
	for _, e := range r.Events() {
		kinds = append(kinds, e.Kind)
	}
	if strings.Join(kinds, ",") != "restore-failure,rebuild" {
		t.Fatalf("event log = %v", kinds)
	}
}

func TestWatchdogPassResetsFailureStreak(t *testing.T) {
	inj := faultinject.New(8)
	r := newResilient(t, inj, ResilienceConfig{WatchdogEvery: 1, MaxRebuilds: 2, BackoffBase: 1}, nil)

	// Three isolated failures separated by clean watchdog passes. Were the
	// streak not reset by a passing Verify, the third failure would push
	// consecFail past MaxRebuilds=2 and degrade the mechanism.
	for cycle := 0; cycle < 3; cycle++ {
		inj.FailAfter(faultinject.RestoreGlobals, 0, 1)
		r.Execute([]byte("b"))
		for i := 0; i < 4; i++ { // drain cooldown, let the watchdog pass
			if res := r.Execute([]byte("a")); res.Fault != nil || res.Ret != 100+'a' {
				t.Fatalf("cycle %d clean exec %d: %+v", cycle, i, res)
			}
		}
	}
	if r.Rebuilds() != 3 {
		t.Fatalf("Rebuilds = %d, want 3", r.Rebuilds())
	}
	if r.Degraded() {
		t.Fatalf("isolated failures degraded the mechanism: %s", r.DegradedReason())
	}
}

func TestPersistentFailureDegradesToForkServer(t *testing.T) {
	inj := faultinject.New(9)
	cov := make([]byte, 1<<16)
	r := newResilient(t, inj, ResilienceConfig{WatchdogEvery: 4, MaxRebuilds: 2, BackoffBase: 1}, cov)

	// Every restore fails from here on: rebuild, rebuild, then fall back.
	inj.FailAfter(faultinject.RestoreGlobals, 0, -1)
	for i := 0; i < 3; i++ {
		r.Execute([]byte{byte('a' + i)})
	}
	if !r.Degraded() {
		t.Fatalf("not degraded after MaxRebuilds+1 consecutive failures; events: %v", r.Events())
	}
	if r.Name() != "closurex-resilient(forkserver)" {
		t.Fatalf("Name = %q", r.Name())
	}
	if r.Rebuilds() != 2 {
		t.Fatalf("Rebuilds = %d, want MaxRebuilds=2", r.Rebuilds())
	}
	if !strings.Contains(r.DegradedReason(), "consecutive") {
		t.Fatalf("DegradedReason = %q", r.DegradedReason())
	}
	if len(r.Quarantined()) != 3 {
		t.Fatalf("Quarantined %d inputs, want 3", len(r.Quarantined()))
	}

	// The campaign continues on the fallback: correct isolation (runs==1
	// each time), coverage still flowing into the same map.
	for i := range cov {
		cov[i] = 0
	}
	for i := 0; i < 10; i++ {
		if res := r.Execute([]byte("a")); res.Fault != nil || res.Ret != 100+'a' {
			t.Fatalf("degraded exec %d: %+v", i, res)
		}
	}
	covered := 0
	for _, b := range cov {
		if b != 0 {
			covered++
		}
	}
	if covered == 0 {
		t.Fatal("fallback executions produce no coverage")
	}
	if r.Execs() != 13 {
		t.Fatalf("Execs = %d, want 13", r.Execs())
	}
}

func TestResilientAvailableByName(t *testing.T) {
	m := buildModule(t, statefulSrc, true)
	mech, err := New("closurex-resilient", Config{Module: m})
	if err != nil {
		t.Fatal(err)
	}
	defer mech.Close()
	if res := mech.Execute([]byte("a")); res.Fault != nil || res.Ret != 100+'a' {
		t.Fatalf("exec: %+v", res)
	}
}

func TestCrashDoesNotTripTheLadder(t *testing.T) {
	r := newResilient(t, nil, ResilienceConfig{WatchdogEvery: 1, MaxRebuilds: 1}, nil)
	for i := 0; i < 5; i++ {
		res := r.Execute([]byte("C")) // planted null deref
		if res.Fault == nil {
			t.Fatalf("exec %d: crash input did not crash", i)
		}
	}
	// Crashes are normal fuzzing outcomes: ClosureX respawns internally but
	// the resilience ladder must not count them as restore failures.
	if r.Rebuilds() != 0 || r.Degraded() || len(r.Quarantined()) != 0 {
		t.Fatalf("ladder engaged on crashes: rebuilds=%d degraded=%v quarantined=%d",
			r.Rebuilds(), r.Degraded(), len(r.Quarantined()))
	}
	if res := r.Execute([]byte("a")); res.Fault != nil || res.Ret != 100+'a' {
		t.Fatalf("post-crash exec: %+v", res)
	}
}

// Campaign-level degradation: with restores permanently failing, the
// campaign crosses the fallback transition mid-run and keeps fuzzing —
// coverage stays monotone because both sides share one coverage map.
func TestCampaignSurvivesDegradation(t *testing.T) {
	inj := faultinject.New(10)
	cov := make([]byte, fuzz.MapSize)
	r := newResilient(t, inj, ResilienceConfig{WatchdogEvery: 4, MaxRebuilds: 2, BackoffBase: 1}, cov)
	inj.FailAfter(faultinject.RestoreGlobals, 0, -1)

	camp := fuzz.NewCampaign(fuzz.Config{
		Executor: r,
		CovMap:   cov,
		Seeds:    [][]byte{[]byte("a"), []byte("zz")},
		Seed:     42,
	})
	prevEdges := 0
	for batch := 0; batch < 6; batch++ {
		camp.RunExecs(int64((batch + 1) * 50))
		if e := camp.Edges(); e < prevEdges {
			t.Fatalf("batch %d: coverage regressed %d -> %d", batch, prevEdges, e)
		} else {
			prevEdges = e
		}
	}
	if !r.Degraded() {
		t.Fatal("permanent restore failure never degraded the mechanism")
	}
	if camp.Execs() < 300 {
		t.Fatalf("campaign stalled at %d execs", camp.Execs())
	}
	if camp.Edges() == 0 {
		t.Fatal("no coverage accumulated")
	}
	if camp.QueueLen() == 0 {
		t.Fatal("queue empty")
	}
}
