package targets

import "closurex/internal/vm"

// mdSource is a line-oriented Markdown block parser (md4c analogue) with
// the two md4c bugs of Table 7 planted: a memcpy with a negative computed
// size in link parsing, and an out-of-bounds array access in the heading
// histogram.
const mdSource = `
// mdlite: Markdown block parser (md4c analogue).

int lines_seen;
int headings_seen;
int links_seen;
int code_blocks;
int quotes_seen;
int list_items;
int emph_runs;
int in_fence;

void count_heading(int *hist, char *line, int len) {
	int level = 0;
	while (level < len && line[level] == '#') level++;
	if (level == 0) return;
	if (level >= len) {
		// All-hash line: still counted as a heading of its level.
		hist[level - 1] = hist[level - 1] + 1;
		headings_seen++;
		return;
	}
	if (line[level] != ' ') return;
	if (level > 6) level = 6;
	hist[level - 1] = hist[level - 1] + 1;   // BUG md-heading-oob: hist has 4 slots
	headings_seen++;
}

void parse_link(char *line, int len, int open) {
	// open points at '['. Find the closing ']' and the '(' after it.
	int cb = -1;
	for (int i = open + 1; i < len; i++) {
		if (line[i] == ']') { cb = i; break; }
	}
	if (cb < 0) return;
	if (cb + 1 >= len) return;
	if (line[cb + 1] != '(') return;
	// The URL ends at the last ')' seen on the line — md4c-style cached
	// index reuse.
	int last_close = -1;
	for (int i = 0; i < len; i++) {
		if (line[i] == ')') last_close = i;
	}
	if (last_close < 0) return;
	int url_len = last_close - cb - 2;
	char url[64];
	if (url_len > 63) url_len = 63;
	// BUG md-memcpy-neg: url_len is negative when the only ')' on the
	// line precedes the link opener.
	memcpy(url, line + cb + 2, url_len);
	links_seen++;
}

void parse_inline(char *line, int len) {
	for (int i = 0; i < len; i++) {
		char c = line[i];
		if (c == '[') parse_link(line, len, i);
		if (c == '*' || c == '_') emph_runs++;
	}
}

int is_fence(char *line, int len) {
	if (len < 3) return 0;
	return line[0] == 96 && line[1] == 96 && line[2] == 96;
}

void parse_line(int *hist, char *line, int len) {
	lines_seen++;
	if (is_fence(line, len)) {
		in_fence = !in_fence;
		code_blocks += in_fence;
		return;
	}
	if (in_fence) return;
	if (len == 0) return;
	if (line[0] == '#') {
		count_heading(hist, line, len);
		return;
	}
	if (line[0] == '>') {
		quotes_seen++;
		parse_inline(line + 1, len - 1);
		return;
	}
	if (len >= 2 && (line[0] == '-' || line[0] == '*') && line[1] == ' ') {
		list_items++;
		parse_inline(line + 2, len - 2);
		return;
	}
	parse_inline(line, len);
}

int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size > 65536) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size + 1);
	if (!buf) exit(1);
	fread(buf, 1, size, f);
	buf[size] = 0;
	// The histogram was sized for the four heading levels the authors
	// used, but count_heading clamps to six (md4c's array-out-of-bounds
	// bug class: a mismatch between the clamp and the allocation).
	int *hist = (int*)malloc(4 * sizeof(int));
	if (!hist) exit(1);
	for (int i = 0; i < 4; i++) hist[i] = 0;
	in_fence = 0;
	int start = 0;
	for (int i = 0; i <= size; i++) {
		if (i == size || buf[i] == 10) {
			parse_line(hist, buf + start, i - start);
			start = i + 1;
		}
	}
	int top = hist[0];
	free(hist);
	free(buf);
	fclose(f);
	return lines_seen * 100 + headings_seen * 10 + top;
}
`

func mdSeeds() [][]byte {
	doc1 := []byte(`# Title

Some *emphasis* and a [link](https://x.dev) here.

## Section
- item one
- item two

> quoted line

` + "```" + `
code block
` + "```" + `
`)
	doc2 := []byte("### Notes\n\nplain text with _underscores_ and [a](b) [c](d)\n")
	return [][]byte{doc1, doc2}
}

func init() {
	register(&Target{
		Name:        "md4c",
		Short:       "mdlite",
		Format:      "markdown",
		ExecSize:    "652 K",
		ImagePages:  1600,
		Source:      mdSource,
		Seeds:       mdSeeds,
		MaxInputLen: 1024,
		Dict:        []string{"](", "```", "#####", "> ", "- ", "["},
		Bugs: []Bug{
			{
				ID: "md-memcpy-neg", Kind: vm.FaultNegativeSize, Func: "parse_link",
				Description: "Memcpy with negative size: only ')' on the line precedes the link",
				Trigger:     []byte(") then [text](\n"),
			},
			{
				ID: "md-heading-oob", Kind: vm.FaultHeapOOB, Func: "count_heading",
				Description: "Array out of bounds access: heading histogram sized below the level clamp",
				Trigger:     []byte("##### deep heading\n"),
			},
		},
	})
}
