package targets

// ttfSource parses sfnt (TrueType) font directories: the table directory,
// the head table and a format-0 cmap. Like the paper's freetype target, it
// contains PRNG-driven control flow (hinting jitter), which is exactly the
// natural nondeterminism the correctness study must detect and mask
// (§6.1.4 observed this in freetype).
const ttfSource = `
// ttflite: sfnt/TrueType font directory parser (freetype analogue).

int tables_seen;
int glyphs_mapped;
int units_per_em;
int head_ok;
int cmap_ok;
int hint_jitter;
int hinted_glyphs;
int checksum_acc;

int rd_be32(char *p) {
	return (p[0] << 24) | (p[1] << 16) | (p[2] << 8) | p[3];
}
int rd_be16(char *p) {
	return (p[0] << 8) | p[1];
}

int tag_is(char *p, int a, int b, int c, int d) {
	return p[0] == a && p[1] == b && p[2] == c && p[3] == d;
}

void parse_head(char *t, int len) {
	if (len < 54) return;
	int magic = rd_be32(t + 12);
	if (magic != 0x5f0f3cf5) return;
	units_per_em = rd_be16(t + 18);
	if (units_per_em < 16) units_per_em = 16;
	if (units_per_em > 16384) units_per_em = 16384;
	head_ok = 1;
}

void parse_cmap(char *t, int len) {
	if (len < 4) return;
	int ntab = rd_be16(t + 2);
	if (ntab < 1 || ntab > 8) return;
	if (len < 4 + ntab * 8) return;
	for (int i = 0; i < ntab; i++) {
		char *rec = t + 4 + i * 8;
		int off = rd_be32(rec + 4);
		if (off < 0 || off + 6 > len) continue;
		int format = rd_be16(t + off);
		if (format == 0) {
			int flen = rd_be16(t + off + 2);
			if (flen < 262 || off + flen > len) continue;
			for (int c = 0; c < 256; c++) {
				int g = t[off + 6 + c];
				if (g != 0) glyphs_mapped++;
			}
			cmap_ok = 1;
		}
	}
}

void hint_glyphs(void) {
	// PRNG-driven control flow: real freetype derives hinting decisions
	// from state that varies run to run; the correctness study must mask
	// the resulting nondeterministic path (the paper saw this too).
	hint_jitter = rand() & 3;
	int rounds = glyphs_mapped;
	if (rounds > 64) rounds = 64;
	for (int i = 0; i < rounds; i++) {
		if (((i + hint_jitter) & 3) == 0) hinted_glyphs++;
	}
}

int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size < 12 || size > 65536) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size);
	if (!buf) exit(1);
	fread(buf, 1, size, f);

	int scaler = rd_be32(buf);
	if (scaler != 0x00010000 && scaler != 0x74727565) {
		free(buf);
		fclose(f);
		exit(2);
	}
	int ntables = rd_be16(buf + 4);
	if (ntables < 1 || ntables > 32) { free(buf); fclose(f); exit(3); }
	if (12 + ntables * 16 > size) { free(buf); fclose(f); exit(3); }

	for (int i = 0; i < ntables; i++) {
		char *e = buf + 12 + i * 16;
		int off = rd_be32(e + 8);
		int len = rd_be32(e + 12);
		if (off < 0 || len < 0 || off + len > size) { free(buf); fclose(f); exit(4); }
		checksum_acc = checksum_acc ^ rd_be32(e + 4);
		if (tag_is(e, 'h', 'e', 'a', 'd')) parse_head(buf + off, len);
		if (tag_is(e, 'c', 'm', 'a', 'p')) parse_cmap(buf + off, len);
		tables_seen++;
	}
	if (head_ok && cmap_ok) hint_glyphs();
	free(buf);
	fclose(f);
	return tables_seen * 100 + head_ok * 10 + cmap_ok;
}
`

func ttfSeeds() [][]byte {
	// head table: 54 bytes with the magic at offset 12, unitsPerEm at 18.
	head := make([]byte, 54)
	copy(head[12:], be32(0x5f0f3cf5))
	copy(head[18:], be16(1000))
	// cmap: header + one encoding record pointing at a format-0 subtable.
	sub := cat(be16(0), be16(262), be16(0), make([]byte, 256))
	for i := 65; i < 91; i++ {
		sub[6+i] = byte(i - 64) // map A-Z
	}
	cmap := cat(be16(0), be16(1), be16(3), be16(1), be32(12), sub)

	dirEntry := func(tag string, off, length int) []byte {
		return cat([]byte(tag), be32(0x1234), be32(off), be32(length))
	}
	base := 12 + 2*16
	font := cat(
		be32(0x00010000), be16(2), be16(16), be16(1), be16(0),
		dirEntry("head", base, len(head)),
		dirEntry("cmap", base+len(head), len(cmap)),
		head, cmap,
	)
	return [][]byte{font}
}

func init() {
	register(&Target{
		Name:        "freetype",
		Short:       "ttflite",
		Format:      "ttf",
		ExecSize:    "4.6 M",
		ImagePages:  390,
		Source:      ttfSource,
		Seeds:       ttfSeeds,
		MaxInputLen: 2048,
		Dict:        []string{"head", "cmap", "\x00\x01\x00\x00", "true", "\x5f\x0f\x3c\xf5"},
	})
}
