package targets

// infSource inflates a zlib-style archive: a 2-byte CMF/FLG header whose
// 16-bit value must be divisible by 31, a sequence of simplified block
// types (stored, RLE, delta), and a trailing Adler-32 checksum over the
// decompressed output. Clean target.
const infSource = `
// inflite: zlib-style archive decompressor (zlib analogue).

int blocks_stored;
int blocks_rle;
int blocks_delta;
int out_bytes;
int checksum_ok;
int header_ok;

int rd_le16(char *p) {
	return p[0] | (p[1] << 8);
}
int rd_be32(char *p) {
	return (p[0] << 24) | (p[1] << 16) | (p[2] << 8) | p[3];
}

int adler32(char *data, int n) {
	int a = 1;
	int b = 0;
	for (int i = 0; i < n; i++) {
		a = (a + data[i]) % 65521;
		b = (b + a) % 65521;
	}
	return (b << 16) | a;
}

int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size < 7 || size > 65536) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size);
	if (!buf) exit(1);
	fread(buf, 1, size, f);

	int cmf = buf[0];
	int flg = buf[1];
	if ((cmf & 15) != 8) { free(buf); fclose(f); exit(2); }
	if (((cmf << 8) | flg) % 31 != 0) { free(buf); fclose(f); exit(2); }
	header_ok = 1;

	int cap = 8192;
	char *out = (char*)malloc(cap);
	if (!out) exit(1);
	int outn = 0;
	int pos = 2;
	int final = 0;
	while (!final && pos < size - 4) {
		int btype = buf[pos];
		final = btype & 1;
		btype = btype >> 1;
		pos++;
		if (btype == 0) {
			// Stored: len le16, ~len le16, raw bytes.
			if (pos + 4 > size - 4) { free(out); free(buf); fclose(f); exit(3); }
			int len = rd_le16(buf + pos);
			int nlen = rd_le16(buf + pos + 2);
			if ((len ^ 0xffff) != nlen) { free(out); free(buf); fclose(f); exit(3); }
			pos += 4;
			if (pos + len > size - 4) { free(out); free(buf); fclose(f); exit(3); }
			if (outn + len > cap) { free(out); free(buf); fclose(f); exit(4); }
			for (int i = 0; i < len; i++) out[outn + i] = buf[pos + i];
			outn += len;
			pos += len;
			blocks_stored++;
		} else if (btype == 1) {
			// RLE: count le16, value byte.
			if (pos + 3 > size - 4) { free(out); free(buf); fclose(f); exit(3); }
			int count = rd_le16(buf + pos);
			char val = buf[pos + 2];
			pos += 3;
			if (count > 4096) { free(out); free(buf); fclose(f); exit(4); }
			if (outn + count > cap) { free(out); free(buf); fclose(f); exit(4); }
			for (int i = 0; i < count; i++) out[outn + i] = val;
			outn += count;
			blocks_rle++;
		} else if (btype == 2) {
			// Delta: count byte, start byte, step byte.
			if (pos + 3 > size - 4) { free(out); free(buf); fclose(f); exit(3); }
			int count = buf[pos];
			int start = buf[pos + 1];
			int step = buf[pos + 2];
			pos += 3;
			if (outn + count > cap) { free(out); free(buf); fclose(f); exit(4); }
			int v = start;
			for (int i = 0; i < count; i++) {
				out[outn + i] = (char)v;
				v = (v + step) & 255;
			}
			outn += count;
			blocks_delta++;
		} else {
			free(out);
			free(buf);
			fclose(f);
			exit(5);
		}
	}
	int stored_sum = rd_be32(buf + size - 4);
	int computed = adler32(out, outn);
	if (stored_sum == computed) checksum_ok = 1;
	out_bytes = outn;
	free(out);
	free(buf);
	fclose(f);
	return blocks_stored * 100 + blocks_rle * 10 + checksum_ok;
}
`

// infAdler mirrors the target's checksum for seed construction.
func infAdler(data []byte) int {
	a, b := 1, 0
	for _, c := range data {
		a = (a + int(c)) % 65521
		b = (b + a) % 65521
	}
	return b<<16 | a
}

// infArchive builds a valid archive producing the given output.
func infArchive(blocks [][3]interface{}, out []byte) []byte {
	hdr := []byte{0x78, 0}
	v := (int(hdr[0]) << 8) | int(hdr[1])
	hdr[1] = byte(int(hdr[1]) + (31-v%31)%31)
	var body []byte
	for i, b := range blocks {
		final := 0
		if i == len(blocks)-1 {
			final = 1
		}
		switch b[0].(string) {
		case "stored":
			data := b[1].([]byte)
			body = append(body, byte(0<<1|final))
			body = append(body, le16(len(data))...)
			body = append(body, le16(len(data)^0xffff)...)
			body = append(body, data...)
		case "rle":
			body = append(body, byte(1<<1|final))
			body = append(body, le16(b[1].(int))...)
			body = append(body, b[2].(byte))
		case "delta":
			body = append(body, byte(2<<1|final))
			body = append(body, byte(b[1].(int)), b[2].(byte), 3)
		}
	}
	return cat(hdr, body, be32(infAdler(out)))
}

func infSeeds() [][]byte {
	out1 := append([]byte("hello stored world"), []byte{7, 7, 7, 7, 7}...)
	a1 := infArchive([][3]interface{}{
		{"stored", []byte("hello stored world"), nil},
		{"rle", 5, byte(7)},
	}, out1)
	out2 := []byte("xyz")
	a2 := infArchive([][3]interface{}{
		{"stored", []byte("xyz"), nil},
	}, out2)
	return [][]byte{a1, a2}
}

func init() {
	register(&Target{
		Name:        "zlib",
		Short:       "inflite",
		Format:      "zlib archive",
		ExecSize:    "260 K",
		ImagePages:  760,
		Source:      infSource,
		Seeds:       infSeeds,
		MaxInputLen: 2048,
		Dict:        []string{"\x78\x9c", "\x78\x01"},
	})
}
