package targets

// pcapSource parses libpcap capture files: the global header then
// per-packet records, dissecting Ethernet and IPv4 on top. Clean target;
// its state is a protocol-count table and a flow cache that persists per
// process.
const pcapSource = `
// pcaplite: pcap capture-file dissector (libpcap analogue).

int packets_seen;
int ipv4_seen;
int tcp_seen;
int udp_seen;
int icmp_seen;
int other_seen;
int truncated;
int swapped;
int proto_table[256];
int flow_hash;

int rd_le32(char *p) {
	return p[0] | (p[1] << 8) | (p[2] << 16) | (p[3] << 24);
}
int rd_be16(char *p) {
	return (p[0] << 8) | p[1];
}

void dissect_ipv4(char *pkt, int len) {
	if (len < 20) { truncated++; return; }
	int vihl = pkt[0];
	int version = vihl >> 4;
	int ihl = (vihl & 15) * 4;
	if (version != 4) { other_seen++; return; }
	if (ihl < 20 || ihl > len) { truncated++; return; }
	int total = rd_be16(pkt + 2);
	if (total > len) truncated++;
	int proto = pkt[9];
	proto_table[proto] = proto_table[proto] + 1;
	ipv4_seen++;
	int src = rd_le32(pkt + 12);
	int dst = rd_le32(pkt + 16);
	flow_hash = flow_hash ^ (src * 31 + dst);
	if (proto == 6) {
		tcp_seen++;
		if (len >= ihl + 20) {
			int sport = rd_be16(pkt + ihl);
			int dport = rd_be16(pkt + ihl + 2);
			flow_hash = flow_hash ^ (sport << 16 | dport);
		}
	} else if (proto == 17) {
		udp_seen++;
	} else if (proto == 1) {
		icmp_seen++;
	}
}

void dissect_ethernet(char *pkt, int len) {
	if (len < 14) { truncated++; return; }
	int ethertype = rd_be16(pkt + 12);
	if (ethertype == 0x0800) {
		dissect_ipv4(pkt + 14, len - 14);
	} else if (ethertype == 0x8100 && len >= 18) {
		int inner = rd_be16(pkt + 16);
		if (inner == 0x0800) dissect_ipv4(pkt + 18, len - 18);
		else other_seen++;
	} else {
		other_seen++;
	}
}

int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size < 24 || size > 65536) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size);
	if (!buf) exit(1);
	fread(buf, 1, size, f);

	int magic = rd_le32(buf);
	if (magic == 0xa1b2c3d4) {
		swapped = 0;
	} else if (magic == 0xd4c3b2a1) {
		swapped = 1;
	} else {
		free(buf);
		fclose(f);
		exit(2);
	}
	int snaplen = rd_le32(buf + 16);
	if (snaplen <= 0 || snaplen > 262144) { free(buf); fclose(f); exit(3); }

	int pos = 24;
	while (pos + 16 <= size) {
		int incl = rd_le32(buf + pos + 8);
		int orig = rd_le32(buf + pos + 12);
		if (swapped) {
			// Byte-swapped captures: reinterpret big-endian.
			incl = ((incl & 255) << 24) | (((incl >> 8) & 255) << 16) |
			       (((incl >> 16) & 255) << 8) | ((incl >> 24) & 255);
			orig = ((orig & 255) << 24) | (((orig >> 8) & 255) << 16) |
			       (((orig >> 16) & 255) << 8) | ((orig >> 24) & 255);
		}
		if (incl < 0 || incl > snaplen) { free(buf); fclose(f); exit(4); }
		if (pos + 16 + incl > size) { truncated++; break; }
		dissect_ethernet(buf + pos + 16, incl);
		packets_seen++;
		if (orig < incl) truncated++;
		pos = pos + 16 + incl;
		if (packets_seen > 512) break;
	}
	free(buf);
	fclose(f);
	return packets_seen * 100 + ipv4_seen * 10 + tcp_seen;
}
`

// pcapPacket builds one record wrapping an Ethernet/IPv4/TCP frame.
func pcapPacket(proto byte, payload []byte) []byte {
	ip := cat(
		[]byte{0x45, 0},        // version/ihl, tos
		be16(20+len(payload)),  // total length
		[]byte{0, 1, 0, 0, 64}, // id, frag, ttl
		[]byte{proto}, be16(0), // proto, checksum
		[]byte{10, 0, 0, 1}, []byte{10, 0, 0, 2},
		payload,
	)
	eth := cat(
		[]byte{2, 0, 0, 0, 0, 1}, []byte{2, 0, 0, 0, 0, 2}, // MACs
		be16(0x0800),
		ip,
	)
	return cat(le32(1), le32(0), le32(len(eth)), le32(len(eth)), eth)
}

func pcapSeeds() [][]byte {
	hdr := cat(le32(0xa1b2c3d4), le16(2), le16(4), le32(0), le32(0), le32(65535), le32(1))
	tcp := cat(be16(443), be16(51000), le32(1), le32(0), []byte{0x50, 0x10}, be16(1024), be16(0), be16(0))
	capture := cat(
		hdr,
		pcapPacket(6, tcp),
		pcapPacket(17, []byte{0, 53, 0, 53, 0, 8, 0, 0}),
		pcapPacket(1, []byte{8, 0, 0, 0}),
	)
	return [][]byte{capture, cat(hdr, pcapPacket(6, tcp))}
}

func init() {
	register(&Target{
		Name:        "libpcap",
		Short:       "pcaplite",
		Format:      "pcap",
		ExecSize:    "2.4 M",
		ImagePages:  310,
		Source:      pcapSource,
		Seeds:       pcapSeeds,
		MaxInputLen: 2048,
		Dict:        []string{"\xd4\xc3\xb2\xa1", "\xa1\xb2\xc3\xd4", "\x08\x00", "\x81\x00"},
	})
}
