package targets

import "closurex/internal/vm"

// bpfSource parses a miniature ELF object the way libbpf does: a section
// table, symbol/string tables and relocation sections. Three null-pointer
// dereferences are planted, the first mirroring the paper's libbpf 0-day
// ("parsing the relocation section of a crashing ELF object leads to a
// NULL pointer access").
const bpfSource = `
// bpflite: minimal ELF/BPF object loader (libbpf analogue).
//
// Layout: 0x7f 'E' 'L' 'F' class data pad pad | e_shoff le32 | e_shnum le16
// | e_shentsize le16 (=20). Section entry: name_off le32, type le32,
// off le32, size le32, link le32. Types: 1 progbits, 2 symtab (16-byte
// entries: name_off, value, size, info), 3 strtab, 7 maps, 9 rel (12-byte
// entries: r_offset, sym_idx, r_type).

struct sec {
	int name_off;
	int type;
	int off;
	int size;
	int link;
};

int sections_seen;
int symbols_seen;
int relocs_seen;
int progs_seen;
char *g_strtab;
int g_strtab_len;
char *g_maps_data;
int g_file_size;

int rd_le32(char *p) {
	return p[0] | (p[1] << 8) | (p[2] << 16) | (p[3] << 24);
}
int rd_le16(char *p) {
	return p[0] | (p[1] << 8);
}

char *sec_data(char *buf, struct sec *secs, int shnum, int idx) {
	if (idx < 0) return (char*)0;
	if (idx >= shnum) return (char*)0;
	struct sec *s = secs + idx;
	if (s->size <= 0) return (char*)0;
	return buf + s->off;
}

void resolve_map(int value) {
	// BUG bpf-maps-null: g_maps_data is only set when a maps section
	// exists, but map-flavored symbols are resolved unconditionally.
	int slot = g_maps_data[0];
	progs_seen += slot + value;
}

void parse_symtab(char *buf, struct sec *s) {
	int n = s->size / 16;
	char *base = buf + s->off;
	for (int i = 0; i < n; i++) {
		char *sym = base + i * 16;
		int name_off = rd_le32(sym);
		int info = rd_le32(sym + 12);
		if (name_off != 0) {
			if (g_strtab_len == 0) {
				// BUG bpf-sym-name-null: the "object has no string table"
				// case was never considered, so g_strtab is NULL here.
				char first = g_strtab[name_off & 255];
				symbols_seen += first != 0;
			} else if (name_off < g_strtab_len) {
				char first = g_strtab[name_off];
				symbols_seen += first != 0;
			}
		}
		if (info == 3) {
			resolve_map(rd_le32(sym + 4));
		}
		symbols_seen++;
	}
}

void parse_rel(char *buf, struct sec *secs, int shnum, struct sec *s) {
	char *symtab = sec_data(buf, secs, shnum, s->link);
	int n = s->size / 12;
	char *base = buf + s->off;
	// BUG bpf-reloc-null: symtab is NULL when the link index is bogus,
	// yet the first symbol is touched before any validation.
	int first_sym = symtab[0];
	for (int i = 0; i < n; i++) {
		char *rel = base + i * 12;
		int sym_idx = rd_le32(rel + 4);
		relocs_seen += sym_idx >= 0;
	}
	relocs_seen += first_sym & 1;
}

int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size < 16 || size > 65536) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size);
	if (!buf) exit(1);
	fread(buf, 1, size, f);
	g_file_size = size;
	g_strtab = (char*)0;
	g_maps_data = (char*)0;

	if (buf[0] != 0x7f || buf[1] != 'E' || buf[2] != 'L' || buf[3] != 'F') {
		free(buf);
		fclose(f);
		exit(2);
	}
	int shoff = rd_le32(buf + 8);
	int shnum = rd_le16(buf + 12);
	int shentsize = rd_le16(buf + 14);
	if (shentsize != 20 || shnum <= 0 || shnum > 64) { free(buf); fclose(f); exit(3); }
	if (shoff < 16 || shoff + shnum * 20 > size) { free(buf); fclose(f); exit(3); }

	struct sec *secs = (struct sec*)malloc(shnum * sizeof(struct sec));
	if (!secs) exit(1);
	for (int i = 0; i < shnum; i++) {
		char *e = buf + shoff + i * 20;
		struct sec *s = secs + i;
		s->name_off = rd_le32(e);
		s->type = rd_le32(e + 4);
		s->off = rd_le32(e + 8);
		s->size = rd_le32(e + 12);
		s->link = rd_le32(e + 16);
		if (s->off < 0 || s->size < 0 || s->off + s->size > size) {
			free(secs);
			free(buf);
			fclose(f);
			exit(4);
		}
		sections_seen++;
	}
	// First pass: locate string table and maps data.
	for (int i = 0; i < shnum; i++) {
		struct sec *s = secs + i;
		if (s->type == 3 && s->size > 0) {
			g_strtab = buf + s->off;
			g_strtab_len = s->size;
		}
		if (s->type == 7 && s->size > 0) {
			g_maps_data = buf + s->off;
		}
	}
	// Second pass: parse contents.
	for (int i = 0; i < shnum; i++) {
		struct sec *s = secs + i;
		if (s->type == 1) progs_seen++;
		if (s->type == 2 && s->size >= 16) parse_symtab(buf, s);
		if (s->type == 9 && s->size >= 12) parse_rel(buf, secs, shnum, s);
	}
	free(secs);
	free(buf);
	fclose(f);
	return sections_seen * 100 + symbols_seen;
}
`

// bpfELF assembles a mini-ELF with the given section entries and blobs.
type bpfSec struct {
	nameOff, typ, link int
	data               []byte
}

func bpfELF(secs []bpfSec) []byte {
	// Layout: 16-byte header, section data blobs, section table.
	var blobs []byte
	offs := make([]int, len(secs))
	base := 16
	for i, s := range secs {
		offs[i] = base + len(blobs)
		blobs = append(blobs, s.data...)
	}
	shoff := base + len(blobs)
	hdr := cat([]byte{0x7f, 'E', 'L', 'F', 2, 1, 0, 0}, le32(shoff), le16(len(secs)), le16(20))
	out := cat(hdr, blobs)
	for i, s := range secs {
		out = cat(out, le32(s.nameOff), le32(s.typ), le32(offs[i]), le32(len(s.data)), le32(s.link))
	}
	return out
}

// bpfSym builds one 16-byte symbol entry.
func bpfSym(nameOff, value, size, info int) []byte {
	return cat(le32(nameOff), le32(value), le32(size), le32(info))
}

// bpfRel builds one 12-byte relocation entry.
func bpfRel(off, symIdx, typ int) []byte {
	return cat(le32(off), le32(symIdx), le32(typ))
}

func bpfSeeds() [][]byte {
	// Valid object: progbits + strtab + symtab(link→strtab) + rel(link→symtab).
	good := bpfELF([]bpfSec{
		{typ: 1, data: []byte{0xb7, 0, 0, 0, 0x95, 0, 0, 0}}, // 0: code
		{typ: 3, data: []byte("\x00main\x00license\x00")},    // 1: strtab
		{typ: 2, link: 1, data: cat(bpfSym(1, 0, 8, 1))},     // 2: symtab
		{typ: 9, link: 2, data: cat(bpfRel(0, 0, 1))},        // 3: rel
	})
	tiny := bpfELF([]bpfSec{
		{typ: 1, data: []byte{0x95, 0, 0, 0}},
	})
	return [][]byte{good, tiny}
}

func init() {
	register(&Target{
		Name:        "libbpf",
		Short:       "bpflite",
		Format:      "bpf object",
		ExecSize:    "1.9 M",
		ImagePages:  810,
		Source:      bpfSource,
		Seeds:       bpfSeeds,
		MaxInputLen: 1024,
		Dict:        []string{"\x7fELF", "main", "license"},
		Bugs: []Bug{
			{
				ID: "bpf-reloc-null", Kind: vm.FaultNullDeref, Func: "parse_rel",
				Description: "Null Ptr Deref: relocation section with bogus symtab link",
				Trigger: bpfELF([]bpfSec{
					{typ: 9, link: 42, data: bpfRel(0, 0, 1)},
				}),
			},
			{
				ID: "bpf-sym-name-null", Kind: vm.FaultNullDeref, Func: "parse_symtab",
				Description: "Null Ptr Deref: named symbol without a string table",
				Trigger: bpfELF([]bpfSec{
					{typ: 2, data: bpfSym(1, 0, 0, 1)},
				}),
			},
			{
				ID: "bpf-maps-null", Kind: vm.FaultNullDeref, Func: "resolve_map",
				Description: "Null Ptr Deref: map symbol without a maps section",
				Trigger: bpfELF([]bpfSec{
					{typ: 3, data: []byte("\x00m\x00")},
					{typ: 2, link: 0, data: bpfSym(1, 4, 0, 3)},
				}),
			},
		},
	})
}
