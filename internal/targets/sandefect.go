package targets

import "closurex/internal/vm"

// sandefectSource carries five seeded heap defects, each behind an input
// tag, for the sanitizer acceptance tests: every defect class the shadow
// plane detects (overflow read/write, use-after-free, double-free,
// invalid-free) with a known allocation site, plus a clean parsing path so
// fuzzing the target without the trigger prefix behaves like any other
// benchmark. The arithmetic on locals and globals is deliberately ordinary
// MinC — frame and global scalar traffic the static elision analysis
// proves safe, which is what the elision-rate acceptance test measures.
const sandefectSource = `
// sandefect: tag-dispatched seeded heap defects.

int checksum;
int ops;
int last_tag;

int note_dispatch(int tag) {
	ops = ops + 1;
	last_tag = tag;
	checksum = checksum ^ tag;
	return ops;
}

int sum_bytes(char *p, int n) {
	int s = 0;
	int i = 0;
	while (i < n) {
		s = s + p[i];
		i = i + 1;
	}
	return s;
}

int overflow_read(char *in, int n) {
	char *buf = (char*)malloc(8);
	if (!buf) exit(1);
	int i = 0;
	while (i < n) {
		buf[i & 7] = in[i];
		i = i + 1;
	}
	int s = buf[8];
	free(buf);
	return s;
}

int overflow_write(char *in, int n) {
	char *buf = (char*)malloc(4);
	if (!buf) exit(1);
	int i = 0;
	while (i <= 4) {
		buf[i] = in[i & 3];
		i = i + 1;
	}
	int s = sum_bytes(buf, 4);
	free(buf);
	return s;
}

int use_after_free(char *in) {
	char *p = (char*)malloc(16);
	if (!p) exit(1);
	p[0] = in[0];
	free(p);
	return p[0];
}

int double_free(char *in) {
	char *p = (char*)malloc(12);
	if (!p) exit(1);
	p[0] = in[0];
	free(p);
	free(p);
	return 0;
}

int invalid_free(char *in) {
	char *p = (char*)malloc(32);
	if (!p) exit(1);
	p[0] = in[0];
	free(p + 8);
	free(p);
	return 0;
}

int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size < 4 || size > 4096) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size);
	if (!buf) { fclose(f); exit(1); }
	fread(buf, 1, size, f);
	fclose(f);
	checksum = sum_bytes(buf, size);
	ops = 0;
	int r = 0;
	if (buf[0] == 'S' && buf[1] == 'D') {
		note_dispatch(buf[2]);
		switch (buf[2]) {
		case '1':
			r = overflow_read(buf + 3, size - 3);
			break;
		case '2':
			r = overflow_write(buf + 3, size - 3);
			break;
		case '3':
			r = use_after_free(buf + 3);
			break;
		case '4':
			r = double_free(buf + 3);
			break;
		case '5':
			r = invalid_free(buf + 3);
			break;
		default:
			r = checksum & 255;
		}
	}
	free(buf);
	return r & 255;
}
`

func sandefectSeeds() [][]byte {
	// Clean seeds only: the campaign starts from well-formed inputs and
	// must mutate its way to the five trigger tags.
	return [][]byte{
		[]byte("SD0 clean path"),
		[]byte("XXno dispatch here"),
	}
}

func init() {
	register(&Target{
		Name:        "sandefect",
		Short:       "sandefect",
		Format:      "tagged",
		ExecSize:    "12 K",
		ImagePages:  64,
		Source:      sandefectSource,
		Seeds:       sandefectSeeds,
		MaxInputLen: 256,
		Dict:        []string{"SD1", "SD2", "SD3", "SD4", "SD5"},
		Aux:         true,
		Bugs: []Bug{
			{
				ID: "san-oob-read", Kind: vm.FaultHeapOOB, Func: "overflow_read",
				Description: "Heap overflow read: one byte past an 8-byte chunk",
				Trigger:     []byte("SD1A"),
			},
			{
				ID: "san-oob-write", Kind: vm.FaultHeapOOB, Func: "overflow_write",
				Description: "Heap overflow write: loop bound includes the 4-byte chunk's end",
				Trigger:     []byte("SD2AAAA"),
			},
			{
				ID: "san-uaf", Kind: vm.FaultUseAfterFree, Func: "use_after_free",
				Description: "Use after free: read through a freed 16-byte chunk",
				Trigger:     []byte("SD3A"),
			},
			{
				ID: "san-double-free", Kind: vm.FaultDoubleFree, Func: "double_free",
				Description: "Double free of a 12-byte chunk",
				Trigger:     []byte("SD4A"),
			},
			{
				ID: "san-bad-free", Kind: vm.FaultBadFree, Func: "invalid_free",
				Description: "Invalid free: pointer into the middle of a 32-byte chunk",
				Trigger:     []byte("SD5A"),
			},
		},
	})
}
