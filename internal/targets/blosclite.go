package targets

import "closurex/internal/vm"

// bloscSource parses a c-blosc2-style "bframe" container. Four null
// pointer dereferences are planted, matching Table 7's four c-blosc2
// "Null Ptr Deref." rows: all are parse paths that assume optional state
// (a dictionary, lazy-chunk bookkeeping, a metalayer block, a chunk body)
// is present when the header merely claims it is.
const bloscSource = `
// blosclite: bframe container parser (c-blosc2 analogue).
//
// Header: "b2fr" | header_len le16 | frame_len le32 | flags u8 | dict_id
// u8 | nchunks le16 | offsets[nchunks] le32 (relative to header_len; the
// value 0xffffffff marks a missing chunk). Chunk: csize le16 | rawsize
// le16 | filter u8 | data[csize]. flags bit2 = metalayers at header+24,
// bit3 = lazy chunks.

int frames_done;
int chunks_done;
int bytes_out;
int filters_seen;
char *g_dict;
char *g_lazy_state;

int rd_le32(char *p) {
	return p[0] | (p[1] << 8) | (p[2] << 16) | (p[3] << 24);
}
int rd_le16(char *p) {
	return p[0] | (p[1] << 8);
}

int apply_dict(char *data, int n) {
	// BUG blosc-dict-null: the dictionary is never loaded in-band, but a
	// nonzero dict_id routes decompression through it anyway.
	int first = g_dict[0];
	return first + n;
}

int decode_lazy(char *data, int n) {
	// BUG blosc-lazy-null: lazy-chunk bookkeeping is only allocated by the
	// (unimplemented) on-disk path.
	int state = g_lazy_state[0];
	return state + n;
}

void parse_meta(char *meta) {
	// BUG blosc-meta-null: caller passes NULL when header_len < 32 but the
	// metalayer flag is set.
	int count = meta[0];
	filters_seen += count;
}

int read_chunk(char *buf, int size, int off, int flags, int dict_id) {
	char *cp;
	if (off == 0xffffffff) {
		// BUG blosc-chunk-null: a missing chunk yields a NULL chunk
		// pointer that the header read below dereferences.
		cp = (char*)0;
	} else {
		if (off < 0) return 0;
		if (off + 5 > size) exit(4);
		cp = buf + off;
	}
	int csize = cp[0] | (cp[1] << 8);
	int rawsize = cp[2] | (cp[3] << 8);
	int filter = cp[4];
	if (csize < 0) return 0;
	if (off + 5 + csize > size) exit(4);
	filters_seen += filter;
	char *out = (char*)malloc(rawsize + 1);
	if (!out) exit(1);
	int n = csize;
	if (n > rawsize) n = rawsize;
	for (int i = 0; i < n; i++) out[i] = cp[5 + i];
	if (dict_id != 0) bytes_out += apply_dict(out, n);
	if (flags & 8) bytes_out += decode_lazy(out, n);
	bytes_out += n;
	free(out);
	chunks_done++;
	return n;
}

int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size < 14 || size > 65536) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size);
	if (!buf) exit(1);
	fread(buf, 1, size, f);
	if (buf[0] != 'b' || buf[1] != '2' || buf[2] != 'f' || buf[3] != 'r') {
		free(buf);
		fclose(f);
		exit(2);
	}
	int header_len = rd_le16(buf + 4);
	int frame_len = rd_le32(buf + 6);
	int flags = buf[10];
	int dict_id = buf[11];
	int nchunks = rd_le16(buf + 12);
	if (header_len < 14 || header_len > size) { free(buf); fclose(f); exit(3); }
	if (frame_len > size) { free(buf); fclose(f); exit(3); }
	if (nchunks > 128) { free(buf); fclose(f); exit(3); }
	if (14 + nchunks * 4 > header_len) { free(buf); fclose(f); exit(3); }

	if (flags & 4) {
		char *meta = (char*)0;
		if (header_len >= 32) meta = buf + 24;
		parse_meta(meta);
	}
	for (int i = 0; i < nchunks; i++) {
		int off = rd_le32(buf + 14 + i * 4);
		int abs = off;
		if (off != 0xffffffff) abs = header_len + off;
		read_chunk(buf, size, off == 0xffffffff ? off : abs, flags, dict_id);
	}
	frames_done++;
	free(buf);
	fclose(f);
	return chunks_done * 10 + frames_done;
}
`

// bloscFrame assembles a bframe with the given chunk payloads.
func bloscFrame(flags, dictID int, chunks [][]byte) []byte {
	headerLen := 14 + len(chunks)*4
	var bodies []byte
	var offs []int
	for _, c := range chunks {
		offs = append(offs, len(bodies))
		bodies = append(bodies, cat(le16(len(c)), le16(len(c)), []byte{0}, c)...)
	}
	total := headerLen + len(bodies)
	out := cat([]byte("b2fr"), le16(headerLen), le32(total), []byte{byte(flags), byte(dictID)}, le16(len(chunks)))
	for _, o := range offs {
		out = cat(out, le32(o))
	}
	return cat(out, bodies)
}

func bloscSeeds() [][]byte {
	return [][]byte{
		bloscFrame(0, 0, [][]byte{[]byte("hello world"), []byte("abcabcabc")}),
		bloscFrame(0, 0, [][]byte{[]byte("x")}),
	}
}

func init() {
	missing := cat([]byte("b2fr"), le16(18), le32(18), []byte{0, 0}, le16(1), le32(0xffffffff))
	register(&Target{
		Name:        "c-blosc2",
		Short:       "blosclite",
		Format:      "bframe",
		ExecSize:    "12 M",
		ImagePages:  680,
		Source:      bloscSource,
		Seeds:       bloscSeeds,
		MaxInputLen: 1024,
		Dict:        []string{"b2fr", "\xff\xff\xff\xff"},
		Bugs: []Bug{
			{
				ID: "blosc-chunk-null", Kind: vm.FaultNullDeref, Func: "read_chunk",
				Description: "Null Ptr Deref: missing-chunk sentinel yields NULL chunk pointer",
				Trigger:     missing,
			},
			{
				ID: "blosc-dict-null", Kind: vm.FaultNullDeref, Func: "apply_dict",
				Description: "Null Ptr Deref: nonzero dict id without a loaded dictionary",
				Trigger:     bloscFrame(0, 5, [][]byte{[]byte("abc")}),
			},
			{
				ID: "blosc-lazy-null", Kind: vm.FaultNullDeref, Func: "decode_lazy",
				Description: "Null Ptr Deref: lazy-chunk flag without lazy state",
				Trigger:     bloscFrame(8, 0, [][]byte{[]byte("abc")}),
			},
			{
				ID: "blosc-meta-null", Kind: vm.FaultNullDeref, Func: "parse_meta",
				Description: "Null Ptr Deref: metalayer flag with a short header",
				Trigger:     bloscFrame(4, 0, [][]byte{[]byte("abc")}),
			},
		},
	})
}
