package targets

// tarSource parses USTAR archives: 512-byte headers with octal fields and
// a checksum, followed by content blocks. No bugs are planted — bsdtar is
// a coverage/throughput benchmark in Table 5/6; the interesting state here
// is the global option/statistics block and the long-name heap buffer that
// leaks on truncated archives.
const tarSource = `
// tarlite: USTAR archive lister (bsdtar analogue).

int entries_seen;
int files_seen;
int dirs_seen;
int links_seen;
int total_bytes;
int bad_checksums;
int long_names;
char *pending_longname;

int parse_octal(char *p, int n) {
	int v = 0;
	for (int i = 0; i < n; i++) {
		char c = p[i];
		if (c == 0 || c == ' ') break;
		if (c < '0' || c > '7') return -1;
		v = v * 8 + (c - '0');
	}
	return v;
}

int header_checksum(char *h) {
	int sum = 0;
	for (int i = 0; i < 512; i++) {
		if (i >= 148 && i < 156) {
			sum += ' ';
		} else {
			sum += h[i];
		}
	}
	return sum;
}

int is_zero_block(char *h) {
	for (int i = 0; i < 512; i++) {
		if (h[i] != 0) return 0;
	}
	return 1;
}

int check_magic(char *h) {
	return h[257] == 'u' && h[258] == 's' && h[259] == 't' &&
	       h[260] == 'a' && h[261] == 'r';
}

void note_name(char *h) {
	int n = 0;
	while (n < 100 && h[n] != 0) n++;
	total_bytes += n;
}

int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size < 512 || size > 65536) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size);
	if (!buf) exit(1);
	fread(buf, 1, size, f);
	pending_longname = (char*)0;

	int pos = 0;
	while (pos + 512 <= size) {
		char *h = buf + pos;
		if (is_zero_block(h)) break;
		if (!check_magic(h)) { free(buf); fclose(f); exit(2); }
		int fsz = parse_octal(h + 124, 12);
		if (fsz < 0) { free(buf); fclose(f); exit(3); }
		int stored = parse_octal(h + 148, 8);
		if (stored != header_checksum(h)) {
			bad_checksums++;
			free(buf);
			fclose(f);
			exit(4);
		}
		char type = h[156];
		if (type == '0' || type == 0) {
			files_seen++;
			total_bytes += fsz;
		} else if (type == '5') {
			dirs_seen++;
		} else if (type == '1' || type == '2') {
			links_seen++;
		} else if (type == 'L') {
			// GNU long name: content holds the real name. The buffer is
			// replaced without freeing if two 'L' records appear in a row
			// (a realistic leak the harness must mop up).
			if (fsz > 0 && fsz < 4096 && pos + 512 + fsz <= size) {
				pending_longname = (char*)malloc(fsz + 1);
				if (pending_longname) {
					for (int i = 0; i < fsz; i++) pending_longname[i] = buf[pos + 512 + i];
					pending_longname[fsz] = 0;
					long_names++;
				}
			}
		}
		note_name(h);
		entries_seen++;
		int blocks = (fsz + 511) / 512;
		if (blocks > 128) { free(buf); fclose(f); exit(5); }
		pos = pos + 512 + blocks * 512;
	}
	if (pending_longname) {
		free(pending_longname);
		pending_longname = (char*)0;
	}
	free(buf);
	fclose(f);
	return entries_seen * 100 + files_seen * 10 + dirs_seen;
}
`

// tarHeader builds one 512-byte USTAR header.
func tarHeader(name string, typeflag byte, size int) []byte {
	h := make([]byte, 512)
	copy(h, name)
	copy(h[100:], "0000644\x00") // mode
	copy(h[108:], "0001000\x00") // uid
	copy(h[116:], "0001000\x00") // gid
	octal := func(v, n int) []byte {
		b := make([]byte, n)
		for i := n - 2; i >= 0; i-- {
			b[i] = byte('0' + v%8)
			v /= 8
		}
		b[n-1] = 0
		return b
	}
	copy(h[124:], octal(size, 12))
	copy(h[136:], octal(0, 12)) // mtime
	h[156] = typeflag
	copy(h[257:], "ustar\x0000")
	// checksum: spaces during computation.
	for i := 148; i < 156; i++ {
		h[i] = ' '
	}
	sum := 0
	for _, b := range h {
		sum += int(b)
	}
	copy(h[148:], octal(sum, 8))
	h[155] = ' '
	return h
}

func tarFile(name string, content []byte) []byte {
	out := tarHeader(name, '0', len(content))
	out = append(out, content...)
	for len(out)%512 != 0 {
		out = append(out, 0)
	}
	return out
}

func tarSeeds() [][]byte {
	a := cat(
		tarFile("hello.txt", []byte("hello tar")),
		tarHeader("docs/", '5', 0),
		tarFile("docs/readme.md", []byte("# readme\ncontents here\n")),
		make([]byte, 1024), // end-of-archive zero blocks
	)
	b := cat(
		tarFile("a", []byte("x")),
		make([]byte, 1024),
	)
	return [][]byte{a, b}
}

func init() {
	register(&Target{
		Name:        "bsdtar",
		Short:       "tarlite",
		Format:      "tar",
		ExecSize:    "4.7 M",
		ImagePages:  1600,
		Source:      tarSource,
		Seeds:       tarSeeds,
		MaxInputLen: 4096,
		Dict:        []string{"ustar", "0000644", "0001000"},
	})
}
