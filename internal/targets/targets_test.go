package targets

import (
	"testing"

	"closurex/internal/execmgr"
	"closurex/internal/fuzz"
	"closurex/internal/ir"
	"closurex/internal/lower"
	"closurex/internal/passes"
	"closurex/internal/vm"
)

// compileTarget lowers a target to pristine IR.
func compileTarget(t *testing.T, tg *Target) *ir.Module {
	t.Helper()
	m, err := lower.Compile(tg.Short+".c", tg.Source, vm.Builtins())
	if err != nil {
		t.Fatalf("%s: compile: %v", tg.Name, err)
	}
	return m
}

// freshRun executes one input in a brand-new process image.
func freshRun(t *testing.T, m *ir.Module, input []byte) vm.Result {
	t.Helper()
	v, err := vm.New(m, vm.Options{DeterministicRand: true, RandSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v.SetInput(input)
	return v.Call("main")
}

func TestRegistryComplete(t *testing.T) {
	bench := Benchmarks()
	if len(bench) != 10 {
		t.Fatalf("benchmarks = %d, want 10 (Table 4)", len(bench))
	}
	want := map[string]bool{
		"bsdtar": true, "libpcap": true, "gpmf-parser": true, "libbpf": true,
		"freetype": true, "giftext": true, "zlib": true, "libdwarf": true,
		"c-blosc2": true, "md4c": true,
	}
	for _, tg := range bench {
		if !want[tg.Name] {
			t.Errorf("unexpected target %q", tg.Name)
		}
		delete(want, tg.Name)
		if tg.ImagePages <= 0 || tg.MaxInputLen <= 0 || tg.Source == "" {
			t.Errorf("%s: incomplete registration", tg.Name)
		}
		if Get(tg.Name) != tg || Get(tg.Short) != tg {
			t.Errorf("%s: Get lookup broken", tg.Name)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing targets: %v", want)
	}
	if Get("nope") != nil {
		t.Error("Get of unknown target returned non-nil")
	}
	// Auxiliary targets resolve by name but stay out of the Table 4 set.
	sd := Get("sandefect")
	if sd == nil || !sd.Aux {
		t.Fatalf("sandefect not registered as auxiliary: %+v", sd)
	}
	if len(All()) != len(bench)+1 {
		t.Errorf("All() = %d targets, want %d benchmarks + sandefect", len(All()), len(bench))
	}
}

// The paper's 15 planted 0-day-class bugs live in the Table 4 suite; the
// auxiliary sandefect target carries its own five seeded defects on top.
func TestBugCountsMatchTable7(t *testing.T) {
	wantBugs := map[string]int{
		"c-blosc2": 4, "gpmf-parser": 6, "libbpf": 3, "md4c": 2,
	}
	total := 0
	for _, tg := range Benchmarks() {
		want := wantBugs[tg.Name]
		if len(tg.Bugs) != want {
			t.Errorf("%s: %d bugs, want %d", tg.Name, len(tg.Bugs), want)
		}
		total += len(tg.Bugs)
	}
	if total != 15 {
		t.Errorf("total planted bugs = %d, want 15 (the paper's 0-day count)", total)
	}
	if sd := Get("sandefect"); len(sd.Bugs) != 5 {
		t.Errorf("sandefect seeded defects = %d, want 5", len(sd.Bugs))
	}
}

func TestAllTargetsCompile(t *testing.T) {
	for _, tg := range All() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := compileTarget(t, tg)
			if m.Func("main") == nil {
				t.Fatal("no main")
			}
			// And the full ClosureX pipeline applies cleanly.
			pm := passes.NewManager(vm.Builtins())
			pm.Add(passes.ClosureXPipeline(true)...)
			pm.Add(passes.NewCoveragePass(1))
			if err := pm.Run(m); err != nil {
				t.Fatalf("pipeline: %v", err)
			}
		})
	}
}

func TestSeedsRunClean(t *testing.T) {
	for _, tg := range All() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := compileTarget(t, tg)
			seeds := tg.Seeds()
			if len(seeds) == 0 {
				t.Fatal("no seeds")
			}
			for i, s := range seeds {
				if len(s) > tg.MaxInputLen {
					t.Errorf("seed %d len %d exceeds MaxInputLen %d", i, len(s), tg.MaxInputLen)
				}
				res := freshRun(t, m, s)
				if res.Fault != nil {
					t.Errorf("seed %d faulted: %v", i, res.Fault)
				}
				if res.Exited {
					t.Errorf("seed %d exited(%d): seeds must parse", i, res.ExitCode)
				}
			}
		})
	}
}

func TestPlantedBugsFire(t *testing.T) {
	for _, tg := range All() {
		for i := range tg.Bugs {
			bug := &tg.Bugs[i]
			t.Run(bug.ID, func(t *testing.T) {
				m := compileTarget(t, tg)
				res := freshRun(t, m, bug.Trigger)
				if res.Fault == nil {
					t.Fatalf("trigger did not crash (ret=%d exited=%v)", res.Ret, res.Exited)
				}
				if res.Fault.Kind != bug.Kind {
					t.Fatalf("fault kind = %s, want %s (%v)", res.Fault.Kind, bug.Kind, res.Fault)
				}
				if res.Fault.Fn != bug.Func {
					t.Fatalf("fault in %s, want %s (%v)", res.Fault.Fn, bug.Func, res.Fault)
				}
			})
		}
	}
}

func TestBugIDsUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, tg := range All() {
		for i := range tg.Bugs {
			id := tg.Bugs[i].ID
			if seen[id] {
				t.Errorf("duplicate bug id %q", id)
			}
			seen[id] = true
			gotT, gotB := BugByID(id)
			if gotT != tg || gotB != &tg.Bugs[i] {
				t.Errorf("BugByID(%q) broken", id)
			}
		}
	}
	if _, b := BugByID("nope"); b != nil {
		t.Error("BugByID of unknown id returned non-nil")
	}
}

// Distinct planted bugs must triage into distinct buckets.
func TestBugTriageKeysDistinct(t *testing.T) {
	keys := map[string]string{}
	for _, tg := range All() {
		m := compileTarget(t, tg)
		for i := range tg.Bugs {
			bug := &tg.Bugs[i]
			res := freshRun(t, m, bug.Trigger)
			if res.Fault == nil {
				t.Fatalf("%s: no fault", bug.ID)
			}
			key := res.Fault.Key()
			if prev, dup := keys[key]; dup {
				t.Errorf("bugs %s and %s share triage key %s", prev, bug.ID, key)
			}
			keys[key] = bug.ID
		}
	}
}

// Targets mutate global state: running a seed twice in the same process
// without restoration must diverge somewhere (it is what makes the
// naive-persistent baseline observably wrong).
func TestTargetsHaveMutableGlobalState(t *testing.T) {
	for _, tg := range All() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := compileTarget(t, tg)
			pm := passes.NewManager(vm.Builtins())
			pm.Add(passes.GlobalPass{})
			if err := pm.Run(m); err != nil {
				t.Fatal(err)
			}
			v, err := vm.New(m, vm.Options{DeterministicRand: true, RandSeed: 1})
			if err != nil {
				t.Fatal(err)
			}
			before, ok := v.SnapshotSection(ir.SectionClosure)
			if !ok || len(before) == 0 {
				t.Fatal("no writable globals")
			}
			v.SetInput(tg.Seeds()[0])
			if res := v.Call("main"); res.Fault != nil {
				t.Fatal(res.Fault)
			}
			after, _ := v.SnapshotSection(ir.SectionClosure)
			same := true
			for i := range before {
				if before[i] != after[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatal("parsing a seed left globals untouched; target is stateless")
			}
		})
	}
}

// Clean targets must not crash under a short fuzzing smoke run; buggy
// targets may only crash with their planted triage keys.
func TestFuzzSmokeNoUnexpectedCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz smoke")
	}
	for _, tg := range All() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			m := compileTarget(t, tg)
			pm := passes.NewManager(vm.Builtins())
			pm.Add(passes.ClosureXPipeline(false)...)
			pm.Add(passes.NewCoveragePass(1))
			if err := pm.Run(m); err != nil {
				t.Fatal(err)
			}
			cov := make([]byte, fuzz.MapSize)
			mech, err := execmgr.New("closurex", execmgr.Config{Module: m, CovMap: cov})
			if err != nil {
				t.Fatal(err)
			}
			defer mech.Close()
			c := fuzz.NewCampaign(fuzz.Config{
				Executor:    mech,
				CovMap:      cov,
				Seeds:       tg.Seeds(),
				Seed:        7,
				MaxInputLen: tg.MaxInputLen,
			})
			c.RunExecs(3000)
			allowed := map[string]bool{}
			for i := range tg.Bugs {
				res := freshRun(t, compileTarget(t, tg), tg.Bugs[i].Trigger)
				if res.Fault != nil {
					allowed[res.Fault.Key()] = true
				}
			}
			for _, cr := range c.Crashes() {
				if !allowed[cr.Key] {
					t.Errorf("unexpected crash %s (input %q)", cr.Key, cr.Input)
				}
			}
		})
	}
}
