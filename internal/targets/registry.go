// Package targets provides the benchmark suite mirroring Table 4 of the
// paper: ten parsers over the same input formats, written in MinC, each
// with the state-management habits of real C programs — mutable globals,
// heap churn with leak-on-error paths, fopen() of the input file, exit()
// on malformed input — so that the execution mechanisms differ observably.
//
// Four targets carry planted bugs of the same classes as Table 7
// (null-pointer dereference, division by zero, unaddressable access,
// invalid read/write, memcpy-with-negative-size, array out of bounds);
// each bug has a known trigger input so tests can prove it fires, and the
// time-to-bug experiment measures how fast each mechanism's fuzzer finds
// it from benign seeds.
package targets

import (
	"fmt"
	"sort"

	"closurex/internal/vm"
)

// Bug describes one planted defect.
type Bug struct {
	// ID names the bug ("gpmf-div-zero-scal").
	ID string
	// Kind is the sanitizer fault class it manifests as.
	Kind vm.FaultKind
	// Func is the MinC function the fault fires in (triage key component).
	Func string
	// Description explains the defect in Table 7 terms.
	Description string
	// Trigger is a crafted input that provably fires the bug.
	Trigger []byte
}

// Target is one benchmark program.
type Target struct {
	// Name is the paper's benchmark name (Table 4).
	Name string
	// Short is this reproduction's implementation name.
	Short string
	// Format describes the input format.
	Format string
	// ExecSize is Table 4's executable size (drives ImagePages).
	ExecSize string
	// ImagePages sizes the simulated resident image.
	ImagePages int
	// Source is the MinC program.
	Source string
	// Seeds returns the initial corpus of valid-ish inputs.
	Seeds func() [][]byte
	// Bugs lists planted defects (empty for clean targets).
	Bugs []Bug
	// MaxInputLen bounds mutated inputs for this target.
	MaxInputLen int
	// Aux marks auxiliary (non-Table-4) targets — test fixtures like the
	// sanitizer's seeded-defect program. They resolve through Get and All
	// like any target but are excluded from Benchmarks and hence from the
	// paper-evaluation defaults.
	Aux bool
	// Dict lists format keywords (magics, FourCCs, section names) handed
	// to the fuzzer's dictionary mutators, as AFL users would via -x.
	Dict []string
}

// registry holds all targets keyed by Name.
var registry = map[string]*Target{}
var order []string

// initErrs collects registration failures from package-init time; a
// library must not panic on registration input, so built-in registration
// problems surface through InitErrors (and from there through
// internal/core) instead of taking the process down.
var initErrs []error

// Register adds a target to the registry. It rejects nil targets, targets
// without a name, and duplicates (by paper name or short name) with an
// error rather than a panic, so embedders can register their own targets
// safely.
func Register(t *Target) error {
	if t == nil {
		return fmt.Errorf("targets: register nil target")
	}
	if t.Name == "" {
		return fmt.Errorf("targets: register target with empty name")
	}
	if _, dup := registry[t.Name]; dup {
		return fmt.Errorf("targets: duplicate target %q", t.Name)
	}
	if t.Short != "" {
		for _, existing := range registry {
			if existing.Short == t.Short {
				return fmt.Errorf("targets: duplicate short name %q (target %q)", t.Short, existing.Name)
			}
		}
	}
	registry[t.Name] = t
	order = append(order, t.Name)
	return nil
}

// register is the package-init shim the built-in Table 4 targets use.
func register(t *Target) {
	if err := Register(t); err != nil {
		initErrs = append(initErrs, err)
	}
}

// InitErrors returns registration errors from package initialization
// (empty for a healthy build).
func InitErrors() []error { return initErrs }

// All returns every target in registration (Table 4) order.
func All() []*Target {
	out := make([]*Target, 0, len(order))
	for _, n := range order {
		out = append(out, registry[n])
	}
	return out
}

// Benchmarks returns the Table 4 evaluation suite in registration order:
// every registered target that is not auxiliary.
func Benchmarks() []*Target {
	out := make([]*Target, 0, len(order))
	for _, n := range order {
		if t := registry[n]; !t.Aux {
			out = append(out, t)
		}
	}
	return out
}

// Get returns the named target (paper name or short name), or nil.
func Get(name string) *Target {
	if t, ok := registry[name]; ok {
		return t
	}
	for _, t := range registry {
		if t.Short == name {
			return t
		}
	}
	return nil
}

// Names returns all paper names sorted.
func Names() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

// BugByID finds a planted bug across all targets.
func BugByID(id string) (*Target, *Bug) {
	for _, t := range All() {
		for i := range t.Bugs {
			if t.Bugs[i].ID == id {
				return t, &t.Bugs[i]
			}
		}
	}
	return nil, nil
}

// ImagePages calibration: each target's simulated resident image (binary +
// shared libraries + loader state, in 4 KiB pages) is the free parameter of
// the process-management substitution. A forkserver pays O(ImagePages) in
// page-table copying per test case regardless of what the test case
// touches; ClosureX pays nothing for those pages between test cases. The
// per-target values are calibrated so that, given each parser's measured
// per-execution work in the interpreter, the ClosureX-vs-forkserver
// throughput ratio lands where Table 5 reports it (2.36x-4.79x, mean
// ~3.5x); see DESIGN.md §2. Resident set sizes are plausible for the
// binaries involved (1.2 MiB - 8.8 MiB).

// le16/le32/be16/be32 are seed-construction helpers.
func le16(v int) []byte { return []byte{byte(v), byte(v >> 8)} }
func le32(v int) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}
func be16(v int) []byte { return []byte{byte(v >> 8), byte(v)} }
func be32(v int) []byte {
	return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

func cat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
