package targets

// gifSource walks GIF structure the way giftext does: header, logical
// screen descriptor, color tables, image descriptors and extension blocks,
// printing a textual summary. Clean target.
const gifSource = `
// giflite: GIF structure printer (giftext analogue).

int images_seen;
int extensions_seen;
int comment_bytes;
int gct_size;
int width;
int height;
int loops_seen;
int trailer_seen;

int rd_le16(char *p) {
	return p[0] | (p[1] << 8);
}

int skip_subblocks(char *buf, int size, int pos) {
	while (pos < size) {
		int n = buf[pos];
		if (n == 0) return pos + 1;
		if (pos + 1 + n > size) return -1;
		pos = pos + 1 + n;
	}
	return -1;
}

int count_subblocks(char *buf, int size, int pos, int which) {
	while (pos < size) {
		int n = buf[pos];
		if (n == 0) return pos + 1;
		if (pos + 1 + n > size) return -1;
		if (which == 1) comment_bytes += n;
		pos = pos + 1 + n;
	}
	return -1;
}

int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size < 13 || size > 65536) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size);
	if (!buf) exit(1);
	fread(buf, 1, size, f);

	if (buf[0] != 'G' || buf[1] != 'I' || buf[2] != 'F' || buf[3] != '8' ||
	    (buf[4] != '7' && buf[4] != '9') || buf[5] != 'a') {
		free(buf);
		fclose(f);
		exit(2);
	}
	width = rd_le16(buf + 6);
	height = rd_le16(buf + 8);
	int packed = buf[10];
	int pos = 13;
	if (packed & 0x80) {
		gct_size = 2 << (packed & 7);
		int bytes = gct_size * 3;
		if (pos + bytes > size) { free(buf); fclose(f); exit(3); }
		pos += bytes;
	}
	puts("screen descriptor ok");

	int done = 0;
	do {
		if (pos >= size) break;
		int tag = buf[pos];
		switch (tag) {
		case 0x3b:
			trailer_seen = 1;
			done = 1;
			break;
		case 0x2c:
			if (pos + 10 > size) { free(buf); fclose(f); exit(4); }
			int ipacked = buf[pos + 9];
			pos += 10;
			if (ipacked & 0x80) {
				int lct = (2 << (ipacked & 7)) * 3;
				if (pos + lct > size) { free(buf); fclose(f); exit(4); }
				pos += lct;
			}
			if (pos + 1 > size) { free(buf); fclose(f); exit(4); }
			pos++; // LZW minimum code size
			pos = skip_subblocks(buf, size, pos);
			if (pos < 0) { free(buf); fclose(f); exit(4); }
			images_seen++;
			break;
		case 0x21:
			if (pos + 2 > size) { free(buf); fclose(f); exit(5); }
			int label = buf[pos + 1];
			pos += 2;
			switch (label) {
			case 0xfe:
				pos = count_subblocks(buf, size, pos, 1);
				break;
			case 0xff:
				loops_seen++;
				pos = skip_subblocks(buf, size, pos);
				break;
			default:
				pos = skip_subblocks(buf, size, pos);
			}
			if (pos < 0) { free(buf); fclose(f); exit(5); }
			extensions_seen++;
			break;
		default:
			free(buf);
			fclose(f);
			exit(6);
		}
		if (images_seen + extensions_seen > 256) done = 1;
	} while (!done);
	if (images_seen > 0) puts("images present");
	print_int(images_seen);
	free(buf);
	fclose(f);
	return images_seen * 100 + extensions_seen * 10 + trailer_seen;
}
`

func gifSeeds() [][]byte {
	subblocks := func(data []byte) []byte {
		var out []byte
		for len(data) > 0 {
			n := len(data)
			if n > 255 {
				n = 255
			}
			out = append(out, byte(n))
			out = append(out, data[:n]...)
			data = data[n:]
		}
		return append(out, 0)
	}
	gct := make([]byte, 6) // 2-entry color table
	img := cat(
		[]byte{0x2c}, le16(0), le16(0), le16(4), le16(4), []byte{0},
		[]byte{2}, subblocks([]byte{0x44, 0x01}),
	)
	comment := cat([]byte{0x21, 0xfe}, subblocks([]byte("made by giflite")))
	gif := cat(
		[]byte("GIF89a"), le16(4), le16(4), []byte{0x80, 0, 0},
		gct, comment, img, []byte{0x3b},
	)
	plain := cat(
		[]byte("GIF87a"), le16(2), le16(2), []byte{0, 0, 0},
		img, []byte{0x3b},
	)
	return [][]byte{gif, plain}
}

func init() {
	register(&Target{
		Name:        "giftext",
		Short:       "giflite",
		Format:      "gif",
		ExecSize:    "232 K",
		ImagePages:  480,
		Source:      gifSource,
		Seeds:       gifSeeds,
		MaxInputLen: 1024,
		Dict:        []string{"GIF89a", "GIF87a", "\x21\xfe", "\x21\xff", "\x2c", "\x3b"},
	})
}
