package targets

// dwarfSource parses DWARF-style debug information out of the same
// mini-ELF container bpflite uses: a .debug_abbrev section (ULEB128
// abbreviation declarations) and a .debug_info section (a CU header and a
// DIE stream referencing abbreviation codes). Clean target; it exercises
// deep, data-dependent recursion through variable-length integers.
const dwarfSource = `
// dwarflite: DWARF debug-info reader (libdwarf analogue).
//
// Container: the bpflite mini-ELF (see bpflite.go). Section types here:
// 0x11 = debug_abbrev, 0x12 = debug_info.

int abbrevs_seen;
int dies_seen;
int attrs_seen;
int cu_count;
int max_depth;
int strings_seen;

int rd_le32(char *p) {
	return p[0] | (p[1] << 8) | (p[2] << 16) | (p[3] << 24);
}
int rd_le16(char *p) {
	return p[0] | (p[1] << 8);
}

// uleb decodes a ULEB128 at buf[pos..end) and stores the value through
// vout; returns the new position or -1.
int uleb(char *buf, int pos, int end, int *vout) {
	int v = 0;
	int shift = 0;
	while (pos < end) {
		int b = buf[pos];
		pos++;
		v = v | ((b & 127) << shift);
		shift += 7;
		if ((b & 128) == 0) { *vout = v; return pos; }
		if (shift > 56) return -1;
	}
	return -1;
}

// abbrev_table caches decoded abbreviations: code -> (tag, nattrs,
// has_children) packed into parallel heap arrays of 64 entries.
int parse_abbrev(char *buf, int start, int end, int *tags, int *nattrs, int *kids) {
	int pos = start;
	int count = 0;
	while (pos < end) {
		int code = 0;
		pos = uleb(buf, pos, end, &code);
		if (pos < 0) return -1;
		if (code == 0) break; // end of table
		if (code < 1 || code > 63) return -1;
		int tag = 0;
		pos = uleb(buf, pos, end, &tag);
		if (pos < 0) return -1;
		if (pos >= end) return -1;
		int children = buf[pos];
		pos++;
		int na = 0;
		while (1) {
			int attr = 0;
			int form = 0;
			pos = uleb(buf, pos, end, &attr);
			if (pos < 0) return -1;
			pos = uleb(buf, pos, end, &form);
			if (pos < 0) return -1;
			if (attr == 0 && form == 0) break;
			if (form < 1 || form > 4) return -1;
			na++;
			if (na > 16) return -1;
		}
		tags[code] = tag;
		nattrs[code] = na;
		kids[code] = children & 1;
		abbrevs_seen++;
		count++;
		if (count > 63) return -1;
	}
	return count;
}

// parse_dies walks the DIE stream: each DIE is a ULEB abbrev code; code 0
// pops one nesting level. Attribute payloads are form-sized constants.
int parse_dies(char *buf, int pos, int end, int *tags, int *nattrs, int *kids) {
	int depth = 0;
	while (pos < end) {
		int code = 0;
		pos = uleb(buf, pos, end, &code);
		if (pos < 0) return -1;
		if (code == 0) {
			if (depth == 0) return pos;
			depth--;
			continue;
		}
		if (code > 63 || tags[code] == 0) return -1;
		int na = nattrs[code];
		for (int i = 0; i < na; i++) {
			// forms: 1=u8, 2=u16, 3=u32, 4=uleb string index
			int form = 1 + ((tags[code] + i) & 3);
			if (form == 1) {
				if (pos + 1 > end) return -1;
				pos++;
			} else if (form == 2) {
				if (pos + 2 > end) return -1;
				pos += 2;
			} else if (form == 3) {
				if (pos + 4 > end) return -1;
				pos += 4;
			} else {
				int sidx = 0;
				pos = uleb(buf, pos, end, &sidx);
				if (pos < 0) return -1;
				strings_seen++;
			}
			attrs_seen++;
		}
		dies_seen++;
		if (kids[code]) {
			depth++;
			if (depth > 32) return -1;
			if (depth > max_depth) max_depth = depth;
		}
		if (dies_seen > 4096) return -1;
	}
	return pos;
}

int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size < 16 || size > 65536) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size);
	if (!buf) exit(1);
	fread(buf, 1, size, f);

	if (buf[0] != 0x7f || buf[1] != 'E' || buf[2] != 'L' || buf[3] != 'F') {
		free(buf);
		fclose(f);
		exit(2);
	}
	int shoff = rd_le32(buf + 8);
	int shnum = rd_le16(buf + 12);
	int shentsize = rd_le16(buf + 14);
	if (shentsize != 20 || shnum <= 0 || shnum > 64) { free(buf); fclose(f); exit(3); }
	if (shoff < 16 || shoff + shnum * 20 > size) { free(buf); fclose(f); exit(3); }

	int abbrev_off = -1;
	int abbrev_size = 0;
	int info_off = -1;
	int info_size = 0;
	for (int i = 0; i < shnum; i++) {
		char *e = buf + shoff + i * 20;
		int type = rd_le32(e + 4);
		int off = rd_le32(e + 8);
		int ssz = rd_le32(e + 12);
		if (off < 0 || ssz < 0 || off + ssz > size) { free(buf); fclose(f); exit(4); }
		if (type == 0x11) { abbrev_off = off; abbrev_size = ssz; }
		if (type == 0x12) { info_off = off; info_size = ssz; }
	}
	if (abbrev_off < 0 || info_off < 0) { free(buf); fclose(f); exit(5); }

	int *tags = (int*)calloc(64, sizeof(int));
	int *nattrs = (int*)calloc(64, sizeof(int));
	int *kids = (int*)calloc(64, sizeof(int));
	if (!tags || !nattrs || !kids) exit(1);

	int n = parse_abbrev(buf, abbrev_off, abbrev_off + abbrev_size, tags, nattrs, kids);
	if (n <= 0) { free(tags); free(nattrs); free(kids); free(buf); fclose(f); exit(6); }

	// CU header: length le32, version le16, abbrev_off le32, addr_size u8.
	if (info_size < 11) { free(tags); free(nattrs); free(kids); free(buf); fclose(f); exit(7); }
	int culen = rd_le32(buf + info_off);
	int version = rd_le16(buf + info_off + 4);
	if (version < 2 || version > 5) { free(tags); free(nattrs); free(kids); free(buf); fclose(f); exit(7); }
	if (culen < 7 || 4 + culen > info_size) { free(tags); free(nattrs); free(kids); free(buf); fclose(f); exit(7); }
	cu_count++;
	int r = parse_dies(buf, info_off + 11, info_off + 4 + culen, tags, nattrs, kids);
	if (r < 0) { free(tags); free(nattrs); free(kids); free(buf); fclose(f); exit(8); }

	free(tags);
	free(nattrs);
	free(kids);
	free(buf);
	fclose(f);
	return dies_seen * 100 + abbrevs_seen * 10 + cu_count;
}
`

// dwUleb encodes a ULEB128.
func dwUleb(v int) []byte {
	var out []byte
	for {
		b := byte(v & 0x7f)
		v >>= 7
		if v != 0 {
			out = append(out, b|0x80)
		} else {
			return append(out, b)
		}
	}
}

func dwarfSeeds() [][]byte {
	// Abbrev table: code 1 = tag 4 (forms cycle u8,u16,u32 per attr),
	// 2 attrs, has children; code 2 = tag 8, 1 attr, leaf.
	abbrev := cat(
		dwUleb(1), dwUleb(4), []byte{1},
		dwUleb(3), dwUleb(1), dwUleb(4), dwUleb(2), dwUleb(0), dwUleb(0),
		dwUleb(2), dwUleb(8), []byte{0},
		dwUleb(5), dwUleb(1), dwUleb(0), dwUleb(0),
		dwUleb(0),
	)
	// DIE stream: DIE(code1){ attrs: form1(u8)+form2(u16) } -> child
	// DIE(code2){ form1(u8) } -> end child -> terminator.
	dies := cat(
		dwUleb(1), []byte{7}, le16(300),
		dwUleb(2), []byte{9},
		dwUleb(0),
		dwUleb(0),
	)
	// tags[1]=4 → forms for attrs i=0,1: 1+((4+0)&3)=1(u8), 1+((4+1)&3)=2(u16).
	// tags[2]=8 → form for attr 0: 1+((8+0)&3)=1(u8).
	info := cat(le32(7+len(dies)), le16(4), le32(0), []byte{8}, dies)
	obj := bpfELF([]bpfSec{
		{typ: 0x11, data: abbrev},
		{typ: 0x12, data: info},
	})
	return [][]byte{obj}
}

func init() {
	register(&Target{
		Name:        "libdwarf",
		Short:       "dwarflite",
		Format:      "ELF",
		ExecSize:    "2.8 M",
		ImagePages:  380,
		Source:      dwarfSource,
		Seeds:       dwarfSeeds,
		MaxInputLen: 2048,
		Dict:        []string{"\x7fELF", "\x11\x00\x00\x00", "\x12\x00\x00\x00"},
	})
}
