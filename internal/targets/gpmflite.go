package targets

import "closurex/internal/vm"

// gpmfSource is a GoPro GPMF KLV metadata parser (the gpmf-parser
// analogue). KLV layout: key[4] type[1] structSize[1] repeat[2,BE], then
// structSize*repeat payload bytes padded to 4-byte alignment; type 0 nests.
// Six bugs are planted, matching Table 7's gpmf-parser rows: two divisions
// by zero, two unaddressable accesses, one invalid write, one invalid read.
const gpmfSource = `
// gpmflite: GPMF (GoPro metadata) KLV parser.
int klv_count;
int device_count;
int strict_mode;
int total_temp;
int scale_cache;
int rate_cache;
int last_tick;
int name_len_sum;
int gps_stamp;
int last_run_klvs;
int prev_probe;

int rd_be32(char *p) {
	return (p[0] << 24) | (p[1] << 16) | (p[2] << 8) | p[3];
}
int rd_be16(char *p) {
	return (p[0] << 8) | p[1];
}
int fourcc(char *p, int a, int b, int c, int d) {
	return p[0] == a && p[1] == b && p[2] == c && p[3] == d;
}

void handle_scal(char *payload, int plen) {
	if (plen < 4) return;
	int scale = rd_be32(payload);
	scale_cache = 1000 / scale;        // BUG gpmf-div-zero-scal
}

void handle_fps(char *payload, int plen) {
	if (strict_mode) return;
	if (plen < 8) return;
	int num = rd_be32(payload);
	int den = rd_be32(payload + 4);
	rate_cache = num / den;            // BUG gpmf-div-zero-fps
}

void handle_strd(char *payload, int plen) {
	if (plen < 2) return;
	int declared = rd_be16(payload);
	int sum = 0;
	for (int i = 0; i < declared; i++) {
		sum += payload[2 + i];         // BUG gpmf-unaddr-strd: trusts declared length
	}
	total_temp += sum;
}

void handle_tick(char *payload, int plen, int repeat) {
	if (repeat < 1) return;
	for (int i = 0; i <= repeat; i++) {
		last_tick = payload[i * 8];    // BUG gpmf-unaddr-tick: off-by-one repeat
	}
}

void handle_name(char *payload, int plen) {
	char *dst = (char*)malloc(16);
	if (!dst) return;
	for (int i = 0; i < plen; i++) {
		dst[i] = payload[i];           // BUG gpmf-invalid-write: no clamp at 16
	}
	name_len_sum += plen;
	free(dst);
}

void handle_gpsu(char *payload, int plen, int type) {
	if (type != 'U') return;
	if (plen < 1) return;
	gps_stamp = payload[15];           // BUG gpmf-invalid-read: fixed 16-byte stamp
}

void handle_tmpc(char *payload, int plen) {
	if (plen < 4) return;
	total_temp += rd_be32(payload);
}

void handle_prev(char *payload, int plen) {
	// Summarize against the previous capture's record count. In a fresh
	// process last_run_klvs is always 0 here (it is assigned after
	// parsing), so this can NEVER crash in correct execution — but under
	// naive persistent fuzzing the stale value indexes far past the
	// 8-byte scratch buffer, producing a crash whose reported input does
	// not reproduce. The paper's non-reproducibility pathology.
	char *scratch = (char*)malloc(8);
	if (!scratch) return;
	if (last_run_klvs > 0) {
		prev_probe += scratch[last_run_klvs];
	}
	free(scratch);
}

int parse_klv(char *buf, int start, int end, int depth) {
	if (depth > 6) return end;
	int pos = start;
	while (pos + 8 <= end) {
		char *k = buf + pos;
		int type = buf[pos + 4];
		int ssize = buf[pos + 5];
		int repeat = rd_be16(buf + pos + 6);
		int plen = ssize * repeat;
		int payload = pos + 8;
		if (payload + plen > end) exit(2);
		if (type == 0) {
			parse_klv(buf, payload, payload + plen, depth + 1);
		} else if (fourcc(k, 'S', 'C', 'A', 'L')) {
			handle_scal(buf + payload, plen);
		} else if (fourcc(k, 'F', 'P', 'S', ' ')) {
			handle_fps(buf + payload, plen);
		} else if (fourcc(k, 'S', 'T', 'R', 'D')) {
			handle_strd(buf + payload, plen);
		} else if (fourcc(k, 'T', 'I', 'C', 'K')) {
			handle_tick(buf + payload, plen, repeat);
		} else if (fourcc(k, 'N', 'A', 'M', 'E')) {
			handle_name(buf + payload, plen);
		} else if (fourcc(k, 'G', 'P', 'S', 'U')) {
			handle_gpsu(buf + payload, plen, type);
		} else if (fourcc(k, 'T', 'M', 'P', 'C')) {
			handle_tmpc(buf + payload, plen);
		} else if (fourcc(k, 'P', 'R', 'E', 'V')) {
			handle_prev(buf + payload, plen);
		} else if (fourcc(k, 'D', 'V', 'I', 'D')) {
			device_count++;
			if (plen >= 1) strict_mode = buf[payload] & 1;
		}
		klv_count++;
		pos = payload + ((plen + 3) & ~3);
	}
	return pos;
}

int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size < 8 || size > 65536) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size);
	if (!buf) exit(1);                 // leaks f on the OOM path
	fread(buf, 1, size, f);
	parse_klv(buf, 0, size, 0);
	last_run_klvs = klv_count;
	if (total_temp > 100000) {
		// Overheated-device bail-out: an early return that forgets both
		// the buffer and the file handle — the leak-per-iteration pattern
		// that exhausts descriptors under naive persistent fuzzing.
		return -2;
	}
	free(buf);
	fclose(f);
	return klv_count;
}
`

// klv builds one GPMF KLV record with 4-byte payload padding.
func klv(key string, typ byte, ssize int, repeat int, payload []byte) []byte {
	out := cat([]byte(key), []byte{typ, byte(ssize)}, be16(repeat), payload)
	for len(out)%4 != 0 { // the 8-byte header keeps this equal to payload padding
		out = append(out, 0)
	}
	return out
}

func gpmfSeeds() [][]byte {
	// A realistic nested stream: DEVC container holding DVID, NAME and a
	// STRM container with SCAL/FPS/TMPC samples.
	inner := cat(
		klv("SCAL", 'l', 4, 1, be32(1)),
		klv("FPS ", 'l', 8, 1, cat(be32(30), be32(1))),
		klv("TMPC", 'l', 4, 1, be32(23)),
	)
	strm := klv("STRM", 0, 1, len(inner), inner)
	dev := cat(
		klv("DVID", 'L', 4, 1, []byte{0, 0, 0x10, 0}),
		klv("NAME", 'c', 1, 6, []byte("hero11")),
		strm,
	)
	devc := klv("DEVC", 0, 1, len(dev), dev)
	// TICK's off-by-one read lands on the following record's header here,
	// so the seed parses cleanly; the bug only faults when TICK sits at
	// the very end of the buffer.
	simple := cat(
		klv("TICK", 'L', 8, 2, make([]byte, 16)),
		// GPSU with a full 16-byte timestamp parses cleanly; truncating
		// it is what trips the fixed-size read.
		klv("GPSU", 'U', 1, 16, make([]byte, 16)),
		klv("PREV", 'L', 4, 1, be32(0)),
		klv("TMPC", 'l', 4, 1, be32(99)),
	)
	return [][]byte{devc, simple}
}

func init() {
	register(&Target{
		Name:        "gpmf-parser",
		Short:       "gpmflite",
		Format:      "mp4 (GoPro)",
		ExecSize:    "720 K",
		ImagePages:  350,
		Source:      gpmfSource,
		Seeds:       gpmfSeeds,
		MaxInputLen: 512,
		Dict: []string{"DEVC", "STRM", "SCAL", "FPS ", "STRD", "TICK",
			"NAME", "GPSU", "TMPC", "PREV", "DVID"},
		Bugs: []Bug{
			{
				ID: "gpmf-div-zero-scal", Kind: vm.FaultDivByZero, Func: "handle_scal",
				Description: "Division by Zero: SCAL scale factor taken from input",
				Trigger:     klv("SCAL", 'l', 4, 1, be32(0)),
			},
			{
				ID: "gpmf-div-zero-fps", Kind: vm.FaultDivByZero, Func: "handle_fps",
				Description: "Division by Zero: FPS denominator taken from input",
				Trigger:     klv("FPS ", 'l', 8, 1, cat(be32(30), be32(0))),
			},
			{
				ID: "gpmf-unaddr-strd", Kind: vm.FaultHeapOOB, Func: "handle_strd",
				Description: "Unaddressable Access: STRD trusts its declared length",
				Trigger:     klv("STRD", 'l', 4, 1, cat(be16(60000), be16(0))),
			},
			{
				ID: "gpmf-unaddr-tick", Kind: vm.FaultHeapOOB, Func: "handle_tick",
				Description: "Unaddressable Access: TICK off-by-one on repeat count",
				Trigger:     klv("TICK", 'L', 8, 1, make([]byte, 8)),
			},
			{
				ID: "gpmf-invalid-write", Kind: vm.FaultHeapOOB, Func: "handle_name",
				Description: "Invalid Write: NAME copied into fixed 16-byte buffer",
				Trigger:     klv("NAME", 'c', 1, 20, make([]byte, 20)),
			},
			{
				ID: "gpmf-invalid-read", Kind: vm.FaultHeapOOB, Func: "handle_gpsu",
				Description: "Invalid Read: GPSU reads a fixed 16-byte timestamp",
				Trigger:     klv("GPSU", 'U', 1, 1, []byte{7}),
			},
		},
	})
}
