package targets

import (
	"strings"
	"testing"
)

func TestRegisterRejectsBadTargets(t *testing.T) {
	if err := Register(nil); err == nil {
		t.Error("nil target accepted")
	}
	if err := Register(&Target{}); err == nil {
		t.Error("unnamed target accepted")
	}

	existing := All()[0]
	if err := Register(&Target{Name: existing.Name}); err == nil {
		t.Error("duplicate paper name accepted")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate-name error = %q", err)
	}
	if err := Register(&Target{Name: "brand-new-target", Short: existing.Short}); err == nil {
		t.Error("duplicate short name accepted")
	}

	// Failed registrations must not have modified the registry.
	if Get("brand-new-target") != nil {
		t.Error("rejected target is resolvable")
	}
	if len(All()) != len(Names()) {
		t.Errorf("registry order (%d) and names (%d) out of sync", len(All()), len(Names()))
	}
}

func TestRegisterAcceptsAndExposesNewTarget(t *testing.T) {
	before := len(All())
	nt := &Target{Name: "registry-test-target", Short: "rtt", Source: "int main(void){return 0;}"}
	if err := Register(nt); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		delete(registry, nt.Name)
		order = order[:len(order)-1]
	})
	if len(All()) != before+1 {
		t.Fatalf("registry size %d, want %d", len(All()), before+1)
	}
	if Get("registry-test-target") != nt || Get("rtt") != nt {
		t.Fatal("registered target not resolvable by name or short name")
	}
}

func TestBuiltinRegistrationClean(t *testing.T) {
	if errs := InitErrors(); len(errs) != 0 {
		t.Fatalf("built-in suite registration errors: %v", errs)
	}
}
