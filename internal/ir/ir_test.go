package ir

import (
	"strings"
	"testing"
)

// buildAddFunc assembles: func add(a, b) { return a + b }
func buildAddFunc() *Func {
	b := NewBuilder("add", 2)
	sum := b.Bin(Add, 0, 1)
	b.Ret(sum)
	return b.F
}

func TestBuilderProducesVerifiableFunc(t *testing.T) {
	m := NewModule("t")
	if err := m.AddFunc(buildAddFunc()); err != nil {
		t.Fatal(err)
	}
	if err := Verify(m, nil); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestAddFuncDuplicate(t *testing.T) {
	m := NewModule("t")
	if err := m.AddFunc(buildAddFunc()); err != nil {
		t.Fatal(err)
	}
	if err := m.AddFunc(buildAddFunc()); err == nil {
		t.Fatal("duplicate function accepted")
	}
}

func TestRenameFuncRewritesCallSites(t *testing.T) {
	m := NewModule("t")
	_ = m.AddFunc(buildAddFunc())
	b := NewBuilder("main", 0)
	x := b.Const(1)
	y := b.Const(2)
	r := b.Call("add", x, y)
	b.Ret(r)
	_ = m.AddFunc(b.F)

	if err := m.RenameFunc("add", "target_add"); err != nil {
		t.Fatal(err)
	}
	if m.Func("add") != nil {
		t.Fatal("old name still resolves")
	}
	if m.Func("target_add") == nil {
		t.Fatal("new name does not resolve")
	}
	mainFn := m.Func("main")
	found := false
	for _, blk := range mainFn.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == OpCall {
				if in.Callee != "target_add" {
					t.Fatalf("call site not rewritten: %q", in.Callee)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no call instruction found")
	}
	if err := Verify(m, nil); err != nil {
		t.Fatalf("Verify after rename: %v", err)
	}
}

func TestRenameFuncErrors(t *testing.T) {
	m := NewModule("t")
	_ = m.AddFunc(buildAddFunc())
	if err := m.RenameFunc("missing", "x"); err == nil {
		t.Fatal("renaming missing function succeeded")
	}
	b := NewBuilder("other", 0)
	b.Ret(-1)
	_ = m.AddFunc(b.F)
	if err := m.RenameFunc("add", "other"); err == nil {
		t.Fatal("rename onto existing name succeeded")
	}
}

func TestRewriteCalls(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder("f", 0)
	r := b.Call("malloc", b.Const(8))
	b.Ret(r)
	_ = m.AddFunc(b.F)
	n := m.RewriteCalls("malloc", "closurex_malloc")
	if n != 1 {
		t.Fatalf("rewrote %d calls, want 1", n)
	}
	if got := b.F.Blocks[0].Instrs[1].Callee; got != "closurex_malloc" {
		t.Fatalf("callee = %q", got)
	}
}

func TestVerifyCatchesBadRegister(t *testing.T) {
	m := NewModule("t")
	f := &Func{Name: "bad", NumRegs: 1}
	f.Blocks = []*Block{{Instrs: []Instr{
		{Op: OpMov, Dst: 0, A: 5},
		{Op: OpRet, A: -1},
	}}}
	_ = m.AddFunc(f)
	if err := Verify(m, nil); err == nil {
		t.Fatal("out-of-range register accepted")
	}
}

func TestVerifyCatchesUnterminatedBlock(t *testing.T) {
	m := NewModule("t")
	f := &Func{Name: "bad", NumRegs: 1}
	f.Blocks = []*Block{{Instrs: []Instr{{Op: OpConst, Dst: 0, Imm: 1}}}}
	_ = m.AddFunc(f)
	if err := Verify(m, nil); err == nil || !strings.Contains(err.Error(), "not terminated") {
		t.Fatalf("err = %v, want not-terminated", err)
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	m := NewModule("t")
	f := &Func{Name: "bad", NumRegs: 1}
	f.Blocks = []*Block{{Instrs: []Instr{
		{Op: OpRet, A: -1},
		{Op: OpRet, A: -1},
	}}}
	_ = m.AddFunc(f)
	if err := Verify(m, nil); err == nil {
		t.Fatal("mid-block terminator accepted")
	}
}

func TestVerifyCatchesBadBranchTarget(t *testing.T) {
	m := NewModule("t")
	f := &Func{Name: "bad", NumRegs: 1}
	f.Blocks = []*Block{{Instrs: []Instr{{Op: OpBr, Targets: [2]int{7, 0}}}}}
	_ = m.AddFunc(f)
	if err := Verify(m, nil); err == nil {
		t.Fatal("bad branch target accepted")
	}
}

func TestVerifyCatchesUnresolvedCallee(t *testing.T) {
	m := NewModule("t")
	b := NewBuilder("f", 0)
	b.Ret(b.Call("mystery"))
	_ = m.AddFunc(b.F)
	if err := Verify(m, nil); err == nil {
		t.Fatal("unresolved callee accepted")
	}
	if err := Verify(m, map[string]bool{"mystery": true}); err != nil {
		t.Fatalf("builtin callee rejected: %v", err)
	}
}

func TestVerifyCatchesCallArity(t *testing.T) {
	m := NewModule("t")
	_ = m.AddFunc(buildAddFunc())
	b := NewBuilder("f", 0)
	b.Ret(b.Call("add", b.Const(1)))
	_ = m.AddFunc(b.F)
	if err := Verify(m, nil); err == nil || !strings.Contains(err.Error(), "want 2") {
		t.Fatalf("arity mismatch: %v", err)
	}
}

func TestVerifyCatchesBadAccessSize(t *testing.T) {
	m := NewModule("t")
	f := &Func{Name: "bad", NumRegs: 2}
	f.Blocks = []*Block{{Instrs: []Instr{
		{Op: OpLoad, Dst: 0, A: 1, Size: 3},
		{Op: OpRet, A: -1},
	}}}
	_ = m.AddFunc(f)
	if err := Verify(m, nil); err == nil {
		t.Fatal("size-3 load accepted")
	}
}

func TestVerifyCatchesBadGlobalIndex(t *testing.T) {
	m := NewModule("t")
	f := &Func{Name: "bad", NumRegs: 1}
	f.Blocks = []*Block{{Instrs: []Instr{
		{Op: OpGlobalAddr, Dst: 0, Imm: 3},
		{Op: OpRet, A: -1},
	}}}
	_ = m.AddFunc(f)
	if err := Verify(m, nil); err == nil {
		t.Fatal("bad global index accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewModule("orig")
	m.AddGlobal(&Global{Name: "g", Size: 8, Init: []byte{1, 2}})
	_ = m.AddFunc(buildAddFunc())
	c := m.Clone()

	// Mutate the clone; original must not change.
	c.Globals[0].Init[0] = 99
	c.Globals[0].Section = SectionClosure
	c.Funcs[0].Blocks[0].Instrs[0].Bin = Sub
	if err := c.RenameFunc("add", "renamed"); err != nil {
		t.Fatal(err)
	}

	if m.Globals[0].Init[0] != 1 || m.Globals[0].Section != SectionData {
		t.Fatal("clone shares global state with original")
	}
	if m.Funcs[0].Blocks[0].Instrs[0].Bin != Add {
		t.Fatal("clone shares instruction storage")
	}
	if m.Func("add") == nil {
		t.Fatal("rename in clone affected original index")
	}
	if c.Func("renamed") == nil || c.Func("add") != nil {
		t.Fatal("clone func index broken")
	}
}

func TestGlobalIndexAndSectionDefault(t *testing.T) {
	m := NewModule("t")
	i := m.AddGlobal(&Global{Name: "counter", Size: 8})
	if m.GlobalIndex("counter") != i {
		t.Fatalf("GlobalIndex = %d, want %d", m.GlobalIndex("counter"), i)
	}
	if m.GlobalIndex("nope") != -1 {
		t.Fatal("missing global found")
	}
	if m.Globals[i].Section != SectionData {
		t.Fatalf("default section = %q", m.Globals[i].Section)
	}
}

func TestPrintStable(t *testing.T) {
	m := NewModule("demo")
	m.AddGlobal(&Global{Name: "g", Size: 8, Init: []byte{0xab}})
	_ = m.AddFunc(buildAddFunc())
	out1 := Print(m)
	out2 := Print(m)
	if out1 != out2 {
		t.Fatal("Print not deterministic")
	}
	for _, want := range []string{"module demo", "global @0 g size=8 section=.data init=ab",
		"func add(params=2 regs=3 frame=0)", "r2 = add r0, r1", "ret r2"} {
		if !strings.Contains(out1, want) {
			t.Fatalf("Print output missing %q:\n%s", want, out1)
		}
	}
}

func TestFormatInstrCoversOpcodes(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConst, Dst: 1, Imm: -4}, "r1 = const -4"},
		{Instr{Op: OpMov, Dst: 1, A: 2}, "r1 = mov r2"},
		{Instr{Op: OpUn, Dst: 0, Un: BNot, A: 3}, "r0 = bnot r3"},
		{Instr{Op: OpLoad, Dst: 2, A: 1, Imm: 8, Size: 4}, "r2 = load4 [r1+8]"},
		{Instr{Op: OpStore, A: 1, B: 2, Imm: -8, Size: 1}, "store1 [r1-8], r2"},
		{Instr{Op: OpGlobalAddr, Dst: 0, Imm: 2}, "r0 = gaddr @2"},
		{Instr{Op: OpFrameAddr, Dst: 0, Imm: 16}, "r0 = faddr 16"},
		{Instr{Op: OpCall, Dst: 3, Callee: "f", Args: []int{1, 2}}, "r3 = call f(r1, r2)"},
		{Instr{Op: OpRet, A: -1}, "ret"},
		{Instr{Op: OpRet, A: 2}, "ret r2"},
		{Instr{Op: OpBr, Targets: [2]int{4, 0}}, "br b4"},
		{Instr{Op: OpCondBr, A: 1, Targets: [2]int{2, 3}}, "condbr r1, b2, b3"},
		{Instr{Op: OpCov, Imm: 0x1f}, "cov 0x1f"},
		{Instr{Op: OpUnreachable}, "unreachable"},
	}
	for _, c := range cases {
		if got := FormatInstr(&c.in); got != c.want {
			t.Errorf("FormatInstr(%s) = %q, want %q", c.in.Op, got, c.want)
		}
	}
}

func TestNumBlocks(t *testing.T) {
	m := NewModule("t")
	_ = m.AddFunc(buildAddFunc())
	b := NewBuilder("two", 0)
	nxt := b.NewBlock()
	b.Br(nxt)
	b.SetBlock(nxt)
	b.Ret(-1)
	_ = m.AddFunc(b.F)
	if got := m.NumBlocks(); got != 3 {
		t.Fatalf("NumBlocks = %d, want 3", got)
	}
}

func TestBuilderAllocaAlignment(t *testing.T) {
	b := NewBuilder("f", 0)
	o1 := b.Alloca(3)
	o2 := b.Alloca(9)
	o3 := b.Alloca(8)
	if o1 != 0 || o2 != 8 || o3 != 24 {
		t.Fatalf("offsets = %d,%d,%d; want 0,8,24", o1, o2, o3)
	}
	if b.F.FrameSize != 32 {
		t.Fatalf("FrameSize = %d, want 32", b.F.FrameSize)
	}
}
