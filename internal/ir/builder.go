package ir

import "fmt"

// Builder incrementally constructs a Func. It is used by the AST lowerer
// and by tests that hand-assemble programs.
type Builder struct {
	F   *Func
	cur int // current block index
	pos int32
}

// NewBuilder starts a function with the given name and parameter count.
// Parameters occupy registers 0..numParams-1; the entry block is created.
func NewBuilder(name string, numParams int) *Builder {
	f := &Func{Name: name, NumParams: numParams, NumRegs: numParams}
	f.Blocks = append(f.Blocks, &Block{})
	return &Builder{F: f}
}

// SetPos records the source line attached to subsequently emitted
// instructions.
func (b *Builder) SetPos(line int32) { b.pos = line }

// NewReg allocates a fresh virtual register.
func (b *Builder) NewReg() int {
	r := b.F.NumRegs
	b.F.NumRegs++
	return r
}

// NewBlock appends an empty block and returns its index.
func (b *Builder) NewBlock() int {
	b.F.Blocks = append(b.F.Blocks, &Block{})
	return len(b.F.Blocks) - 1
}

// SetBlock redirects emission to block i.
func (b *Builder) SetBlock(i int) { b.cur = i }

// CurBlock returns the index of the block being emitted into.
func (b *Builder) CurBlock() int { return b.cur }

// Terminated reports whether the current block already ends in a
// terminator, in which case further emission would be dead.
func (b *Builder) Terminated() bool {
	return b.F.Blocks[b.cur].Terminator() != nil
}

// Alloca reserves size bytes (aligned to 8) in the frame and returns the
// byte offset. Pair with FrameAddr to obtain the address at run time.
func (b *Builder) Alloca(size int64) int64 {
	off := b.F.FrameSize
	b.F.FrameSize += (size + 7) &^ 7
	return off
}

func (b *Builder) emit(in Instr) {
	in.Pos = b.pos
	blk := b.F.Blocks[b.cur]
	if t := blk.Terminator(); t != nil {
		// Emitting past a terminator is always a caller bug: the
		// instruction would be unreachable yet verify as live code, the
		// exact miscompilation class the analysis verifier hunts. Fail
		// loudly at the construction site instead.
		panic(fmt.Sprintf("ir: emit %s into terminated block b%d of %s (already ends in %s near line %d)",
			in.Op, b.cur, b.F.Name, t.Op, t.Pos))
	}
	blk.Instrs = append(blk.Instrs, in)
}

// Finish seals construction: it checks that every block ends in exactly one
// terminator, so control cannot fall off the end of the function into
// whatever block the slice happens to hold next. Callers that synthesize
// implicit returns (the lowerer) do so before calling Finish.
func (b *Builder) Finish() (*Func, error) {
	for i, blk := range b.F.Blocks {
		if blk.Terminator() == nil {
			return nil, fmt.Errorf("ir: function %s: block %d falls through without a terminator (%d instrs)",
				b.F.Name, i, len(blk.Instrs))
		}
	}
	return b.F, nil
}

// Const emits dst = v and returns the destination register.
func (b *Builder) Const(v int64) int {
	d := b.NewReg()
	b.emit(Instr{Op: OpConst, Dst: d, Imm: v, A: -1, B: -1})
	return d
}

// Mov emits dst = src into an existing destination register.
func (b *Builder) Mov(dst, src int) {
	b.emit(Instr{Op: OpMov, Dst: dst, A: src, B: -1})
}

// Bin emits dst = a op b2 and returns dst.
func (b *Builder) Bin(op BinOp, a, b2 int) int {
	d := b.NewReg()
	b.emit(Instr{Op: OpBin, Dst: d, Bin: op, A: a, B: b2})
	return d
}

// Un emits dst = op a and returns dst.
func (b *Builder) Un(op UnOp, a int) int {
	d := b.NewReg()
	b.emit(Instr{Op: OpUn, Dst: d, Un: op, A: a, B: -1})
	return d
}

// Load emits dst = mem[addr+off] of size bytes and returns dst.
func (b *Builder) Load(addr int, off int64, size int) int {
	d := b.NewReg()
	b.emit(Instr{Op: OpLoad, Dst: d, A: addr, B: -1, Imm: off, Size: size})
	return d
}

// Store emits mem[addr+off] = val of size bytes.
func (b *Builder) Store(addr, val int, off int64, size int) {
	b.emit(Instr{Op: OpStore, Dst: -1, A: addr, B: val, Imm: off, Size: size})
}

// GlobalAddr emits dst = &globals[idx] and returns dst.
func (b *Builder) GlobalAddr(idx int) int {
	d := b.NewReg()
	b.emit(Instr{Op: OpGlobalAddr, Dst: d, A: -1, B: -1, Imm: int64(idx)})
	return d
}

// FrameAddr emits dst = frame+off and returns dst.
func (b *Builder) FrameAddr(off int64) int {
	d := b.NewReg()
	b.emit(Instr{Op: OpFrameAddr, Dst: d, A: -1, B: -1, Imm: off})
	return d
}

// Call emits dst = callee(args...) and returns dst.
func (b *Builder) Call(callee string, args ...int) int {
	d := b.NewReg()
	b.emit(Instr{Op: OpCall, Dst: d, A: -1, B: -1, Callee: callee, Args: args})
	return d
}

// Ret emits return reg; pass -1 to return 0.
func (b *Builder) Ret(reg int) {
	b.emit(Instr{Op: OpRet, Dst: -1, A: reg, B: -1})
}

// Br emits an unconditional jump.
func (b *Builder) Br(target int) {
	b.emit(Instr{Op: OpBr, Dst: -1, A: -1, B: -1, Targets: [2]int{target, 0}})
}

// CondBr emits if cond != 0 goto then else goto els.
func (b *Builder) CondBr(cond, then, els int) {
	b.emit(Instr{Op: OpCondBr, Dst: -1, A: cond, B: -1, Targets: [2]int{then, els}})
}

// Unreachable emits a trap.
func (b *Builder) Unreachable() {
	b.emit(Instr{Op: OpUnreachable, Dst: -1, A: -1, B: -1})
}
