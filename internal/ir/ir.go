// Package ir defines the intermediate representation the ClosureX pass
// pipeline transforms. It plays the role LLVM IR plays in the paper: a
// module of functions over basic blocks of register-machine instructions,
// plus global variables carrying a section attribute (the hook GlobalPass
// uses, mirroring LLVM's setSection), function renaming (setName) and
// call-site rewriting (replaceAllUsesWith).
package ir

import "fmt"

// BinOp enumerates binary operators. Arithmetic is 64-bit two's complement;
// comparisons yield 0 or 1.
type BinOp uint8

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div // signed; division by zero faults in the VM
	Rem // signed; division by zero faults in the VM
	Shl
	Shr // arithmetic (signed) shift right
	And
	Or
	Xor
	Eq
	Ne
	Lt // signed
	Le
	Gt
	Ge
	Ult // unsigned compare (pointer comparisons)
	Ule
	Ugt
	Uge
)

var binNames = [...]string{
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	Shl: "shl", Shr: "shr", And: "and", Or: "or", Xor: "xor",
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
	Ult: "ult", Ule: "ule", Ugt: "ugt", Uge: "uge",
}

func (b BinOp) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin(%d)", uint8(b))
}

// UnOp enumerates unary operators.
type UnOp uint8

// Unary operators.
const (
	Neg  UnOp = iota // arithmetic negation
	Not              // logical not: x == 0 ? 1 : 0
	BNot             // bitwise complement
)

func (u UnOp) String() string {
	switch u {
	case Neg:
		return "neg"
	case Not:
		return "not"
	case BNot:
		return "bnot"
	}
	return fmt.Sprintf("un(%d)", uint8(u))
}

// Op enumerates instruction opcodes.
type Op uint8

// Instruction opcodes.
const (
	OpConst       Op = iota // Dst = Imm
	OpMov                   // Dst = R[A]
	OpBin                   // Dst = R[A] <Bin> R[B]
	OpUn                    // Dst = <Un> R[A]
	OpLoad                  // Dst = zero-extended mem[R[A]+Imm], Size bytes
	OpStore                 // mem[R[A]+Imm] = low Size bytes of R[B]
	OpGlobalAddr            // Dst = address of Globals[Imm]
	OpFrameAddr             // Dst = frame base + Imm
	OpCall                  // Dst = Callee(R[Args[0]], ...)
	OpRet                   // return R[A] (A < 0: return 0)
	OpBr                    // jump Targets[0]
	OpCondBr                // if R[A] != 0 jump Targets[0] else Targets[1]
	OpCov                   // coverage probe; Imm = location ID (CoveragePass)
	OpUnreachable           // executing this is a fault
	OpSanCheck              // shadow-check mem[R[A]+Imm], Size bytes; B: 0=read 1=write (SanitizerPass)
)

var opNames = [...]string{
	OpConst: "const", OpMov: "mov", OpBin: "bin", OpUn: "un",
	OpLoad: "load", OpStore: "store", OpGlobalAddr: "gaddr",
	OpFrameAddr: "faddr", OpCall: "call", OpRet: "ret", OpBr: "br",
	OpCondBr: "condbr", OpCov: "cov", OpUnreachable: "unreachable",
	OpSanCheck: "sancheck",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one instruction. The meaning of the operand fields depends on Op;
// see the opcode comments.
type Instr struct {
	Op      Op
	Dst     int    // destination register (-1 when unused)
	A, B    int    // operand registers
	Imm     int64  // immediate / offset / global index / coverage ID
	Size    int    // memory access width: 1, 2, 4 or 8
	Bin     BinOp  // for OpBin
	Un      UnOp   // for OpUn
	Callee  string // for OpCall: function or builtin name
	Args    []int  // for OpCall: argument registers
	Targets [2]int // for OpBr/OpCondBr: block indices
	Pos     int32  // source line (for fault reports and crash triage)
	// SanElide marks an OpLoad/OpStore whose shadow check the static
	// elision analysis proved unnecessary; SanitizerPass sets it instead
	// of inserting an OpSanCheck, and CLX113 audits that every access in
	// a sanitized module is either checked or so marked.
	SanElide bool
	// TrackElide marks an allocation call (closurex_malloc/closurex_calloc)
	// whose chunk the interprocedural lifetime analysis proved freed on
	// every path to iteration end — its chunk-map tracking can be elided.
	// InterprocPass sets it; CLX114 audits that every mark is provable.
	TrackElide bool
	// FileElide is TrackElide's analogue for closurex_fopen sites whose
	// descriptor is provably closed before iteration end.
	FileElide bool
	// CalleeIdx caches OpCall resolution, stamped at module-commit time by
	// Module.ResolveCalls so neither execution backend pays a string-map
	// lookup per call: 0 means unresolved (execute via name lookup),
	// +k means Module.Funcs[k-1], -k means slot k-1 of the canonical
	// builtin table (the builtin names in ascending order). Any call-site
	// rewrite clears it; CLX122 verifies a non-zero index still matches
	// Callee.
	CalleeIdx int
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpRet, OpBr, OpCondBr, OpUnreachable:
		return true
	}
	return false
}

// Block is a basic block: straight-line instructions ending in one
// terminator.
type Block struct {
	Instrs []Instr
}

// Terminator returns the block's final instruction, or nil if the block is
// empty or unterminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := &b.Instrs[len(b.Instrs)-1]
	if !t.IsTerminator() {
		return nil
	}
	return t
}

// Func is a function: a register count, a byte-addressable frame for locals
// whose address is taken, and basic blocks. Parameters arrive in registers
// 0..NumParams-1. Block 0 is the entry.
type Func struct {
	Name      string
	NumParams int
	NumRegs   int
	FrameSize int64 // bytes of addressable locals (arrays, &x)
	Blocks    []*Block
}

// Global is a module-level variable. Section is the linker section the
// variable is placed in; GlobalPass rewrites it exactly as the paper's pass
// calls setSection in LLVM.
type Global struct {
	Name    string
	Size    int64
	Init    []byte // initializer bytes; shorter than Size means zero-fill
	Const   bool   // isConstant() in the paper's GlobalPass
	Section string // ".data" until a pass says otherwise
}

// Well-known section names.
const (
	SectionData    = ".data"
	SectionRodata  = ".rodata"
	SectionClosure = "closure_global_section"
)

// InterprocInfo records what the interprocedural mod/ref + lifetime
// analysis proved about a module. InterprocPass stamps it; the harness
// consumes MayWriteGlobals to scope snapshot/restore/watchdog work to the
// byte ranges the target can actually dirty, and interproc.Audit (CLX114,
// CLX117) re-derives every claim from scratch to reject unsound elisions.
// InterprocBudgetCap is the largest per-execution instruction budget under
// which the interprocedural analysis' elision claims are sound. The
// mod/ref fallback for loop-carried pointer arithmetic proves stores
// heap-directed via a counting argument — an accumulator grows by at most
// 2^32 per executed instruction, so offsets stay below int64 wraparound
// only while executions run at most 2^26 instructions. The harness
// refuses to arm restore elision on a VM with a larger budget.
const InterprocBudgetCap = int64(1) << 26

type InterprocInfo struct {
	// MayWriteGlobals lists indices of globals some function reachable
	// from target_main/closurex_init may write (sorted ascending).
	// Globals absent from the list are provably clean each iteration.
	MayWriteGlobals []int
	// WholeSection is set when the analysis could not bound global writes
	// (unknown pointer stores, call-graph holes): every global must be
	// treated as may-written and no restore scoping is sound.
	WholeSection bool
	// AllocSites / AllocElided count allocation call sites and how many
	// carry TrackElide; FileSites / FileElided likewise for fopen sites.
	AllocSites  int
	AllocElided int
	FileSites   int
	FileElided  int
}

// Module is a translation unit: globals plus functions.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func

	// Sanitized records that SanitizerPass has run: every load/store is
	// either preceded by an OpSanCheck or carries SanElide (verified by
	// CLX113), and the VM may expect shadow state to be armed.
	Sanitized bool

	// Interproc holds the interprocedural analysis results when
	// InterprocPass has run; nil means no elision metadata (full restore).
	Interproc *InterprocInfo

	funcIdx map[string]int
	// callsResolved records that ResolveCalls has stamped every OpCall's
	// CalleeIdx since the last mutation that could invalidate one.
	callsResolved bool
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, funcIdx: make(map[string]int)}
}

// AddGlobal appends a global and returns its index (the operand of
// OpGlobalAddr).
func (m *Module) AddGlobal(g *Global) int {
	if g.Section == "" {
		g.Section = SectionData
	}
	m.Globals = append(m.Globals, g)
	return len(m.Globals) - 1
}

// GlobalIndex returns the index of the named global, or -1.
func (m *Module) GlobalIndex(name string) int {
	for i, g := range m.Globals {
		if g.Name == name {
			return i
		}
	}
	return -1
}

// AddFunc appends a function. Duplicate names are rejected.
func (m *Module) AddFunc(f *Func) error {
	if _, dup := m.funcIdx[f.Name]; dup {
		return fmt.Errorf("ir: duplicate function %q", f.Name)
	}
	m.funcIdx[f.Name] = len(m.Funcs)
	m.Funcs = append(m.Funcs, f)
	// Existing indices stay valid, but calls naming the new function may
	// now resolve where they previously could not.
	m.callsResolved = false
	return nil
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func {
	i, ok := m.funcIdx[name]
	if !ok {
		return nil
	}
	return m.Funcs[i]
}

// FuncIndex returns the position of the named function in Funcs, or -1.
// It is the resolution the compiled tier bakes into call closures and the
// one CalleeIdx caches (+index−1), so checkers comparing either against
// the name go through this single accessor.
func (m *Module) FuncIndex(name string) int {
	i, ok := m.funcIdx[name]
	if !ok {
		return -1
	}
	return i
}

// RenameFunc renames a function and rewrites every direct call site — the
// combination of setName and replaceAllUsesWith the paper's RenameMainPass
// performs.
func (m *Module) RenameFunc(from, to string) error {
	i, ok := m.funcIdx[from]
	if !ok {
		return fmt.Errorf("ir: no function %q", from)
	}
	if _, dup := m.funcIdx[to]; dup {
		return fmt.Errorf("ir: rename target %q already exists", to)
	}
	m.Funcs[i].Name = to
	delete(m.funcIdx, from)
	m.funcIdx[to] = i
	m.rewriteCalls(from, to)
	return nil
}

// RewriteCalls redirects every call of `from` to `to` without renaming any
// function definition — the replaceAllUsesWith step used by HeapPass,
// FilePass and ExitPass when they splice in wrapper routines.
func (m *Module) RewriteCalls(from, to string) int {
	return m.rewriteCalls(from, to)
}

func (m *Module) rewriteCalls(from, to string) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == OpCall && in.Callee == from {
					in.Callee = to
					in.CalleeIdx = 0
					n++
				}
			}
		}
	}
	if n > 0 {
		m.callsResolved = false
	}
	return n
}

// ResolveCalls stamps every OpCall's CalleeIdx: +k for Funcs[k-1], -k for
// builtin slot k-1 as reported by builtinIndex (which must return the
// callee's position in the canonical — ascending-name — builtin order, or
// a negative value for non-builtins), 0 when the callee resolves to
// neither. Run it once at module-commit time, after the last call-site
// rewrite; both the interpreter and the compiled backend then dispatch
// calls by index instead of a per-call string-map lookup. Returns the
// number of call sites resolved.
func (m *Module) ResolveCalls(builtinIndex func(name string) int) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != OpCall {
					continue
				}
				in.CalleeIdx = 0
				if fi, ok := m.funcIdx[in.Callee]; ok {
					in.CalleeIdx = fi + 1
					n++
				} else if builtinIndex != nil {
					if bi := builtinIndex(in.Callee); bi >= 0 {
						in.CalleeIdx = -(bi + 1)
						n++
					}
				}
			}
		}
	}
	m.callsResolved = true
	return n
}

// CallsResolved reports whether ResolveCalls has run since the last
// mutation that could invalidate a cached CalleeIdx. Callers use it to
// skip a redundant (and, post-commit, racy) re-resolution.
func (m *Module) CallsResolved() bool { return m.callsResolved }

// Clone deep-copies the module so a pass pipeline can instrument one copy
// while the pristine module remains available (e.g. for the fresh-process
// ground truth in the correctness study).
func (m *Module) Clone() *Module {
	nm := NewModule(m.Name)
	nm.Sanitized = m.Sanitized
	nm.callsResolved = m.callsResolved
	if m.Interproc != nil {
		info := *m.Interproc
		info.MayWriteGlobals = append([]int(nil), m.Interproc.MayWriteGlobals...)
		nm.Interproc = &info
	}
	for _, g := range m.Globals {
		ng := *g
		ng.Init = append([]byte(nil), g.Init...)
		nm.Globals = append(nm.Globals, &ng)
	}
	for _, f := range m.Funcs {
		nf := &Func{
			Name:      f.Name,
			NumParams: f.NumParams,
			NumRegs:   f.NumRegs,
			FrameSize: f.FrameSize,
		}
		for _, b := range f.Blocks {
			nb := &Block{Instrs: make([]Instr, len(b.Instrs))}
			copy(nb.Instrs, b.Instrs)
			for i := range nb.Instrs {
				if nb.Instrs[i].Args != nil {
					nb.Instrs[i].Args = append([]int(nil), nb.Instrs[i].Args...)
				}
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
		nm.funcIdx[nf.Name] = len(nm.Funcs)
		nm.Funcs = append(nm.Funcs, nf)
	}
	return nm
}

// NumBlocks returns the total basic-block count across all functions (the
// denominator for edge-coverage percentages).
func (m *Module) NumBlocks() int {
	n := 0
	for _, f := range m.Funcs {
		n += len(f.Blocks)
	}
	return n
}
