package ir

import (
	"errors"
	"fmt"
)

// ErrInvalid is wrapped by every verifier failure.
var ErrInvalid = errors.New("ir: invalid module")

// Verify checks module well-formedness: every block terminated exactly at
// its end, register and block references in range, call targets resolvable
// (module function or a name in builtins), and global indices valid. The
// pass manager runs it after every pass, as `opt -verify-each` would.
func Verify(m *Module, builtins map[string]bool) error {
	for _, f := range m.Funcs {
		if err := verifyFunc(m, f, builtins); err != nil {
			return fmt.Errorf("%w: func %s: %v", ErrInvalid, f.Name, err)
		}
	}
	return nil
}

func verifyFunc(m *Module, f *Func, builtins map[string]bool) error {
	if len(f.Blocks) == 0 {
		return errors.New("no blocks")
	}
	if f.NumParams > f.NumRegs {
		return fmt.Errorf("%d params but only %d regs", f.NumParams, f.NumRegs)
	}
	checkReg := func(r int, what string) error {
		if r < 0 || r >= f.NumRegs {
			return fmt.Errorf("%s register %d out of range [0,%d)", what, r, f.NumRegs)
		}
		return nil
	}
	for bi, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %d empty", bi)
		}
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			last := ii == len(b.Instrs)-1
			if in.IsTerminator() != last {
				if last {
					return fmt.Errorf("block %d not terminated", bi)
				}
				return fmt.Errorf("block %d: terminator %s mid-block at %d", bi, in.Op, ii)
			}
			if err := verifyInstr(m, f, in, builtins, checkReg); err != nil {
				return fmt.Errorf("block %d instr %d (%s): %v", bi, ii, in.Op, err)
			}
		}
	}
	return nil
}

func verifyInstr(m *Module, f *Func, in *Instr, builtins map[string]bool, checkReg func(int, string) error) error {
	checkTarget := func(t int) error {
		if t < 0 || t >= len(f.Blocks) {
			return fmt.Errorf("branch target %d out of range", t)
		}
		return nil
	}
	checkSize := func() error {
		switch in.Size {
		case 1, 2, 4, 8:
			return nil
		}
		return fmt.Errorf("bad access size %d", in.Size)
	}
	switch in.Op {
	case OpConst, OpFrameAddr:
		return checkReg(in.Dst, "dst")
	case OpGlobalAddr:
		if in.Imm < 0 || in.Imm >= int64(len(m.Globals)) {
			return fmt.Errorf("global index %d out of range", in.Imm)
		}
		return checkReg(in.Dst, "dst")
	case OpMov, OpUn:
		if err := checkReg(in.A, "src"); err != nil {
			return err
		}
		return checkReg(in.Dst, "dst")
	case OpBin:
		if err := checkReg(in.A, "lhs"); err != nil {
			return err
		}
		if err := checkReg(in.B, "rhs"); err != nil {
			return err
		}
		return checkReg(in.Dst, "dst")
	case OpLoad:
		if err := checkSize(); err != nil {
			return err
		}
		if err := checkReg(in.A, "addr"); err != nil {
			return err
		}
		return checkReg(in.Dst, "dst")
	case OpStore:
		if err := checkSize(); err != nil {
			return err
		}
		if err := checkReg(in.A, "addr"); err != nil {
			return err
		}
		return checkReg(in.B, "val")
	case OpCall:
		callee := m.Func(in.Callee)
		if callee == nil && !builtins[in.Callee] {
			return fmt.Errorf("unresolved callee %q", in.Callee)
		}
		if callee != nil && len(in.Args) != callee.NumParams {
			return fmt.Errorf("call %s: %d args, want %d", in.Callee, len(in.Args), callee.NumParams)
		}
		for _, a := range in.Args {
			if err := checkReg(a, "arg"); err != nil {
				return err
			}
		}
		return checkReg(in.Dst, "dst")
	case OpRet:
		if in.A >= 0 {
			return checkReg(in.A, "ret")
		}
		return nil
	case OpBr:
		return checkTarget(in.Targets[0])
	case OpCondBr:
		if err := checkReg(in.A, "cond"); err != nil {
			return err
		}
		if err := checkTarget(in.Targets[0]); err != nil {
			return err
		}
		return checkTarget(in.Targets[1])
	case OpCov, OpUnreachable:
		return nil
	case OpSanCheck:
		if err := checkSize(); err != nil {
			return err
		}
		if in.B != 0 && in.B != 1 {
			return fmt.Errorf("sancheck direction %d not 0 (read) or 1 (write)", in.B)
		}
		return checkReg(in.A, "addr")
	}
	return fmt.Errorf("unknown opcode %d", in.Op)
}
