package ir

import (
	"strings"
	"testing"
)

// Emitting into a terminated block used to be silently accepted, producing
// a block with a mid-block terminator that only surfaced at verify time,
// far from the buggy emitter. It must panic immediately with a diagnostic
// naming the block, the function and the existing terminator.
func TestBuilderEmitIntoTerminatedBlockPanics(t *testing.T) {
	b := NewBuilder("f", 0)
	b.SetPos(12)
	b.Ret(-1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("emit into a terminated block did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		for _, want := range []string{"terminated block", "b0", "f", "ret", "line 12"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic %q missing %q", msg, want)
			}
		}
	}()
	b.Const(1)
}

func TestBuilderDoubleTerminatorPanics(t *testing.T) {
	b := NewBuilder("f", 0)
	b.Br(b.NewBlock())
	defer func() {
		if recover() == nil {
			t.Fatal("second terminator in one block did not panic")
		}
	}()
	b.Ret(-1)
}

// Finish must reject a function whose final block falls through — control
// would run off the end into undefined behavior.
func TestBuilderFinishRejectsFallThrough(t *testing.T) {
	b := NewBuilder("f", 0)
	b.Const(1) // no terminator follows
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish accepted a fall-through block")
	} else if !strings.Contains(err.Error(), "falls through") {
		t.Fatalf("unhelpful Finish error: %v", err)
	}
	// The same check applies to any interior block, not just the last.
	b2 := NewBuilder("g", 0)
	mid := b2.NewBlock()
	b2.Br(mid) // entry terminated; mid left open
	b2.SetBlock(mid)
	b2.Const(2)
	if _, err := b2.Finish(); err == nil {
		t.Fatal("Finish accepted an open interior block")
	}
}

func TestBuilderFinishAcceptsTerminatedFunc(t *testing.T) {
	b := NewBuilder("f", 1)
	b.Ret(0)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "f" || len(f.Blocks) != 1 {
		t.Fatalf("Finish returned %+v", f)
	}
	m := NewModule("t")
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := Verify(m, nil); err != nil {
		t.Fatalf("finished function does not verify: %v", err)
	}
}
