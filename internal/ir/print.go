package ir

import (
	"fmt"
	"strings"
)

// Print renders the module as assembly-like text, stable across runs, for
// golden tests and the closurex-cc -dump-ir tool.
func Print(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	for i, g := range m.Globals {
		kind := "global"
		if g.Const {
			kind = "const"
		}
		fmt.Fprintf(&sb, "%s @%d %s size=%d section=%s", kind, i, g.Name, g.Size, g.Section)
		if len(g.Init) > 0 {
			fmt.Fprintf(&sb, " init=%x", g.Init)
		}
		sb.WriteByte('\n')
	}
	for _, f := range m.Funcs {
		sb.WriteString(PrintFunc(f))
	}
	return sb.String()
}

// PrintFunc renders one function.
func PrintFunc(f *Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(params=%d regs=%d frame=%d)\n",
		f.Name, f.NumParams, f.NumRegs, f.FrameSize)
	for bi, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", bi)
		for ii := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", FormatInstr(&b.Instrs[ii]))
		}
	}
	return sb.String()
}

// FormatInstr renders one instruction.
func FormatInstr(in *Instr) string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Imm)
	case OpMov:
		return fmt.Sprintf("r%d = mov r%d", in.Dst, in.A)
	case OpBin:
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Bin, in.A, in.B)
	case OpUn:
		return fmt.Sprintf("r%d = %s r%d", in.Dst, in.Un, in.A)
	case OpLoad:
		return fmt.Sprintf("r%d = load%d [r%d%+d]%s", in.Dst, in.Size, in.A, in.Imm, elideSuffix(in))
	case OpStore:
		return fmt.Sprintf("store%d [r%d%+d], r%d%s", in.Size, in.A, in.Imm, in.B, elideSuffix(in))
	case OpGlobalAddr:
		return fmt.Sprintf("r%d = gaddr @%d", in.Dst, in.Imm)
	case OpFrameAddr:
		return fmt.Sprintf("r%d = faddr %d", in.Dst, in.Imm)
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("r%d", a)
		}
		return fmt.Sprintf("r%d = call %s(%s)", in.Dst, in.Callee, strings.Join(args, ", "))
	case OpRet:
		if in.A < 0 {
			return "ret"
		}
		return fmt.Sprintf("ret r%d", in.A)
	case OpBr:
		return fmt.Sprintf("br b%d", in.Targets[0])
	case OpCondBr:
		return fmt.Sprintf("condbr r%d, b%d, b%d", in.A, in.Targets[0], in.Targets[1])
	case OpCov:
		return fmt.Sprintf("cov %#x", in.Imm)
	case OpUnreachable:
		return "unreachable"
	case OpSanCheck:
		rw := "r"
		if in.B == 1 {
			rw = "w"
		}
		return fmt.Sprintf("sancheck%d %s [r%d%+d]", in.Size, rw, in.A, in.Imm)
	}
	return fmt.Sprintf("?op%d", in.Op)
}

// elideSuffix annotates accesses whose shadow check was statically elided,
// so -dump-ir makes the elision decisions auditable.
func elideSuffix(in *Instr) string {
	if in.SanElide {
		return " !elide"
	}
	return ""
}
