package passes

import (
	"strings"
	"testing"

	"closurex/internal/ir"
	"closurex/internal/lower"
	"closurex/internal/vm"
)

const sampleSrc = `
int hits;
const int magic = 7;
char banner[6] = "hello";

int helper(int n) {
	char *p = (char*)malloc(n);
	if (!p) exit(2);
	free(p);
	return n * magic;
}

int main(void) {
	int f = fopen("/input", "r");
	if (!f) exit(1);
	hits++;
	int r = helper(3);
	fclose(f);
	return r;
}
`

func compileSample(t *testing.T) *ir.Module {
	t.Helper()
	m, err := lower.Compile("sample.c", sampleSrc, vm.Builtins())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// callees returns the multiset of call targets in the module.
func callees(m *ir.Module) map[string]int {
	out := map[string]int{}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpCall {
					out[b.Instrs[i].Callee]++
				}
			}
		}
	}
	return out
}

func TestRenameMainPass(t *testing.T) {
	m := compileSample(t)
	if err := (RenameMainPass{}).Run(m); err != nil {
		t.Fatal(err)
	}
	if m.Func("main") != nil || m.Func(TargetMain) == nil {
		t.Fatal("main not renamed")
	}
	// Idempotent.
	if err := (RenameMainPass{}).Run(m); err != nil {
		t.Fatalf("second run: %v", err)
	}
}

func TestRenameMainPassNoMain(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder("other", 0)
	b.Ret(-1)
	_ = m.AddFunc(b.F)
	if err := (RenameMainPass{}).Run(m); err == nil {
		t.Fatal("pass succeeded without main")
	}
}

func TestExitPass(t *testing.T) {
	m := compileSample(t)
	if err := (ExitPass{}).Run(m); err != nil {
		t.Fatal(err)
	}
	c := callees(m)
	if c["exit"] != 0 {
		t.Fatalf("exit calls remain: %d", c["exit"])
	}
	if c["closurex_exit"] != 2 {
		t.Fatalf("closurex_exit calls = %d, want 2", c["closurex_exit"])
	}
}

func TestHeapPass(t *testing.T) {
	m := compileSample(t)
	if err := (HeapPass{}).Run(m); err != nil {
		t.Fatal(err)
	}
	c := callees(m)
	for _, raw := range []string{"malloc", "calloc", "realloc", "free"} {
		if c[raw] != 0 {
			t.Errorf("%s calls remain", raw)
		}
	}
	if c["closurex_malloc"] != 1 || c["closurex_free"] != 1 {
		t.Fatalf("wrapper call counts: %+v", c)
	}
}

func TestFilePass(t *testing.T) {
	m := compileSample(t)
	if err := (FilePass{}).Run(m); err != nil {
		t.Fatal(err)
	}
	c := callees(m)
	if c["fopen"] != 0 || c["fclose"] != 0 {
		t.Fatalf("raw file calls remain: %+v", c)
	}
	if c["closurex_fopen"] != 1 || c["closurex_fclose"] != 1 {
		t.Fatalf("wrapper call counts: %+v", c)
	}
}

func TestGlobalPassSections(t *testing.T) {
	m := compileSample(t)
	if err := (GlobalPass{}).Run(m); err != nil {
		t.Fatal(err)
	}
	for _, g := range m.Globals {
		if g.Const {
			if g.Section != ir.SectionRodata {
				t.Errorf("const global %s in %s", g.Name, g.Section)
			}
		} else if g.Section != ir.SectionClosure {
			t.Errorf("writable global %s in %s, want closure section", g.Name, g.Section)
		}
	}
	// The mutable global must land in the closure section ("hits" and the
	// writable banner array).
	lay := vm.NewLayout(m)
	sec, ok := lay.Section(ir.SectionClosure)
	if !ok || sec.Size == 0 {
		t.Fatalf("closure section missing or empty: %+v", lay.Sections)
	}
}

func TestCoveragePassInstrumentsEveryBlock(t *testing.T) {
	m := compileSample(t)
	if err := (NewCoveragePass(1)).Run(m); err != nil {
		t.Fatal(err)
	}
	want := m.NumBlocks()
	if got := CountProbes(m); got != want {
		t.Fatalf("probes = %d, want %d", got, want)
	}
	// Idempotent: running again must not double-instrument.
	if err := (NewCoveragePass(1)).Run(m); err != nil {
		t.Fatal(err)
	}
	if got := CountProbes(m); got != want {
		t.Fatalf("after rerun probes = %d, want %d", got, want)
	}
}

func TestCoverageIDsDeterministic(t *testing.T) {
	m1 := compileSample(t)
	m2 := compileSample(t)
	_ = NewCoveragePass(7).Run(m1)
	_ = NewCoveragePass(7).Run(m2)
	if ir.Print(m1) != ir.Print(m2) {
		t.Fatal("coverage instrumentation not deterministic")
	}
	m3 := compileSample(t)
	_ = NewCoveragePass(8).Run(m3)
	if ir.Print(m1) == ir.Print(m3) {
		t.Fatal("coverage seed has no effect")
	}
}

func TestManagerRunsPipelineAndVerifies(t *testing.T) {
	m := compileSample(t)
	pm := NewManager(vm.Builtins())
	pm.Add(ClosureXPipeline(false)...)
	pm.Add(NewCoveragePass(1))
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	if len(pm.Passes()) != 6 {
		t.Fatalf("pipeline length = %d", len(pm.Passes()))
	}
	// Instrumented module still runs and produces the same answer.
	machine, err := vm.New(m, vm.Options{Files: map[string][]byte{"/input": []byte("x")}})
	if err != nil {
		t.Fatal(err)
	}
	res := machine.Call(TargetMain)
	if res.Fault != nil || res.Ret != 21 {
		t.Fatalf("instrumented run: ret=%d fault=%v", res.Ret, res.Fault)
	}
}

func TestPipelinePreservesSemantics(t *testing.T) {
	// The full pipeline must not change observable behaviour for a single
	// execution: compare pristine vs instrumented results.
	pristine := compileSample(t)
	instr := pristine.Clone()
	pm := NewManager(vm.Builtins())
	pm.Add(ClosureXPipeline(false)...)
	if err := pm.Run(instr); err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{"/input": []byte("x")}
	v1, _ := vm.New(pristine, vm.Options{Files: files})
	v2, _ := vm.New(instr, vm.Options{Files: files})
	r1 := v1.Call("main")
	r2 := v2.Call(TargetMain)
	if r1.Ret != r2.Ret || r1.Exited != r2.Exited || (r1.Fault == nil) != (r2.Fault == nil) {
		t.Fatalf("semantics diverged: pristine %+v vs instrumented %+v", r1, r2)
	}
}

func TestDeferInitPassHoistsCalls(t *testing.T) {
	src := `
int table[4];
void closurex_init(void) {
	for (int i = 0; i < 4; i++) table[i] = i + 1;
}
int main(void) {
	closurex_init();
	return table[0] + table[3];
}
`
	m, err := lower.Compile("t.c", src, vm.Builtins())
	if err != nil {
		t.Fatal(err)
	}
	if err := (DeferInitPass{}).Run(m); err != nil {
		t.Fatal(err)
	}
	if callees(m)[InitFunc] != 0 {
		t.Fatal("init call not hoisted")
	}
	// After hoisting, main alone returns 0 (table untouched)...
	v1, _ := vm.New(m, vm.Options{})
	if res := v1.Call("main"); res.Ret != 0 {
		t.Fatalf("hoisted main = %d, want 0", res.Ret)
	}
	// ...and the harness-style sequence init-then-main returns 5.
	v2, _ := vm.New(m, vm.Options{})
	if res := v2.Call(InitFunc); res.Fault != nil {
		t.Fatal(res.Fault)
	}
	if res := v2.Call("main"); res.Ret != 5 {
		t.Fatalf("init+main = %d, want 5", res.Ret)
	}
}

func TestDeferInitPassRejectsParams(t *testing.T) {
	src := `
void closurex_init(int x) { }
int main(void) { return 0; }
`
	m, err := lower.Compile("t.c", src, vm.Builtins())
	if err != nil {
		t.Fatal(err)
	}
	if err := (DeferInitPass{}).Run(m); err == nil || !strings.Contains(err.Error(), "no parameters") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeferInitPassNoopWithoutInitFunc(t *testing.T) {
	m := compileSample(t)
	before := ir.Print(m)
	if err := (DeferInitPass{}).Run(m); err != nil {
		t.Fatal(err)
	}
	if ir.Print(m) != before {
		t.Fatal("pass changed module without init function")
	}
}

func TestTable3Inventory(t *testing.T) {
	// The canonical pipeline matches the paper's Table 3.
	want := map[string]string{
		"RenameMainPass": "Rename target's main",
		"ExitPass":       "Rename target's exit calls",
		"HeapPass":       "Inject tracking of target's heap memory",
		"FilePass":       "Inject tracking of target's file descriptors",
		"GlobalPass":     "Move target's writable globals into a separate memory section",
	}
	for _, p := range ClosureXPipeline(false) {
		d, ok := want[p.Name()]
		if !ok {
			t.Errorf("unexpected pass %s", p.Name())
			continue
		}
		if p.Description() != d {
			t.Errorf("%s description = %q, want %q", p.Name(), p.Description(), d)
		}
		delete(want, p.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing passes: %v", want)
	}
}
