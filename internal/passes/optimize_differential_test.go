package passes

import (
	"testing"

	"closurex/internal/fuzz"
	"closurex/internal/ir"
	"closurex/internal/lower"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// Differential validation of the optimizer across the entire benchmark
// suite: for every target, optimized and unoptimized builds must agree on
// dozens of mutated inputs — result, exit status, fault kind, and the
// observable global state.
func TestOptimizerDifferentialAllTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep")
	}
	for _, tg := range targets.All() {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			plain, err := lower.Compile(tg.Short+".c", tg.Source, vm.Builtins())
			if err != nil {
				t.Fatal(err)
			}
			opt := plain.Clone()
			pm := NewManager(vm.Builtins())
			pm.Add(OptimizePipeline()...)
			if err := pm.Run(opt); err != nil {
				t.Fatal(err)
			}
			rng := fuzz.NewRNG(0xD1FFE12)
			mut := fuzz.NewMutator(rng, tg.MaxInputLen)
			seeds := tg.Seeds()
			inputs := append([][]byte{}, seeds...)
			for i := 0; i < 40; i++ {
				inputs = append(inputs, mut.Havoc(seeds[i%len(seeds)]))
			}
			for i := range tg.Bugs {
				inputs = append(inputs, tg.Bugs[i].Trigger)
			}
			for i, in := range inputs {
				r1, s1 := execState(t, plain, in)
				r2, s2 := execState(t, opt, in)
				if r1.Ret != r2.Ret || r1.Exited != r2.Exited || r1.ExitCode != r2.ExitCode {
					t.Fatalf("input %d: results diverged: %+v vs %+v", i, r1, r2)
				}
				if (r1.Fault == nil) != (r2.Fault == nil) {
					t.Fatalf("input %d: fault presence diverged: %v vs %v", i, r1.Fault, r2.Fault)
				}
				if r1.Fault != nil && r1.Fault.Kind != r2.Fault.Kind {
					t.Fatalf("input %d: fault kind diverged: %v vs %v", i, r1.Fault, r2.Fault)
				}
				if s1 != s2 {
					t.Fatalf("input %d: global state diverged", i)
				}
			}
		})
	}
}

// execState runs input in a fresh deterministic VM and returns the result
// plus a fingerprint of the whole globals image.
func execState(t *testing.T, m *ir.Module, input []byte) (vm.Result, string) {
	t.Helper()
	v, err := vm.New(m, vm.Options{DeterministicRand: true, RandSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	v.SetInput(input)
	res := v.Call("main")
	return res, string(v.SnapshotGlobals())
}
