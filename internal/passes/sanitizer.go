package passes

import (
	"closurex/internal/analysis/sanitize"
	"closurex/internal/ir"
)

// SanitizerPass inserts an OpSanCheck shadow check immediately before
// every load and store, so the VM validates each access against the
// ASan-style shadow plane before performing it. With Elide, the static
// bounds/escape analysis (internal/analysis/sanitize) first proves
// accesses in-bounds and marks them SanElide instead of checking them —
// the audit trail CLX113 and closurex-lint -sanitize-report read back.
//
// The pass creates no blocks, so CoveragePass probe IDs — and therefore
// coverage bitmaps — are identical with and without sanitization.
type SanitizerPass struct {
	// Elide arms the static check-elision analysis.
	Elide bool
}

// Name implements Pass.
func (SanitizerPass) Name() string { return "SanitizerPass" }

// Description implements Pass.
func (SanitizerPass) Description() string {
	return "Insert shadow-memory checks before loads/stores, eliding statically safe ones"
}

// Run implements Pass.
func (p SanitizerPass) Run(m *ir.Module) error {
	if m.Sanitized {
		return nil // idempotent
	}
	for _, f := range m.Funcs {
		var elidable map[sanitize.Access]bool
		if p.Elide {
			elidable = sanitize.Analyze(m, f)
		}
		for bi, b := range f.Blocks {
			grown := 0
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Op == ir.OpLoad || in.Op == ir.OpStore {
					grown++
				}
			}
			if grown == 0 {
				continue
			}
			out := make([]ir.Instr, 0, len(b.Instrs)+grown)
			for ii := range b.Instrs {
				in := b.Instrs[ii]
				if in.Op == ir.OpLoad || in.Op == ir.OpStore {
					if elidable[sanitize.Access{Block: bi, Instr: ii}] {
						in.SanElide = true
					} else {
						dir := 0
						if in.Op == ir.OpStore {
							dir = 1
						}
						out = append(out, ir.Instr{
							Op: ir.OpSanCheck, Dst: -1, A: in.A, B: dir,
							Imm: in.Imm, Size: in.Size, Pos: in.Pos,
						})
					}
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
	}
	m.Sanitized = true
	return nil
}
