package passes

import (
	"fmt"

	"closurex/internal/analysis/interproc"
	"closurex/internal/ir"
)

// InterprocPass runs the interprocedural mod/ref + lifetime analysis
// (internal/analysis/interproc) and commits its results to the module:
// TrackElide marks on allocation sites proven freed on every path,
// FileElide marks on fopen sites proven closed, and the
// ir.Module.Interproc metadata (transitive may-write global set) the
// harness uses to scope snapshot, watchdog and restore work.
//
// The pass runs after the ClosureX state-tracking pipeline (so sites are
// already the closurex_* wrappers and writable globals are in
// closure_global_section) and before CoveragePass/SanitizerPass. It
// inserts no instructions and creates no blocks, so coverage geometry —
// and therefore bitmaps and corpora — are bit-identical with and without
// it; interproc.Audit re-derives every claim under VerifyEach.
type InterprocPass struct{}

// Name implements Pass.
func (InterprocPass) Name() string { return "InterprocPass" }

// Description implements Pass.
func (InterprocPass) Description() string {
	return "Prove restore-elision claims: may-written globals, must-freed chunks, must-closed files"
}

// Run implements Pass.
func (InterprocPass) Run(m *ir.Module) error {
	if m.Interproc != nil {
		return nil // idempotent
	}
	if m.Func(TargetMain) == nil {
		return fmt.Errorf("module has no %s; run the ClosureX pipeline first", TargetMain)
	}
	interproc.Apply(m, interproc.Analyze(m))
	return nil
}
