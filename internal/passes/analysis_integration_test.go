package passes

import (
	"errors"
	"strings"
	"testing"

	"closurex/internal/analysis"
	"closurex/internal/ir"
	"closurex/internal/vm"
)

// The entry-point contract string is declared in both packages because
// analysis sits below passes in the import graph; this pins them together.
func TestTargetMainContractShared(t *testing.T) {
	if TargetMain != analysis.TargetMain {
		t.Fatalf("passes.TargetMain %q != analysis.TargetMain %q", TargetMain, analysis.TargetMain)
	}
}

// sectionScramblerPass simulates a buggy pass: it wipes a global's section
// attribute, a corruption the quick structural ir.Verify gate does not
// model. Only the deep verify-each sweep can attribute it.
type sectionScramblerPass struct{}

func (sectionScramblerPass) Name() string        { return "SectionScramblerPass" }
func (sectionScramblerPass) Description() string { return "test-only: corrupts a global's section" }
func (sectionScramblerPass) Run(m *ir.Module) error {
	m.Globals[0].Section = ""
	return nil
}

func TestVerifyEachAttributesOffendingPass(t *testing.T) {
	// Without verify-each the corruption sails through the pipeline —
	// exactly the gap the deep verifier closes.
	m := compileSample(t)
	pm := NewManager(vm.Builtins()).
		Add(RenameMainPass{}, sectionScramblerPass{}, NewCoveragePass(1))
	if err := pm.Run(m); err != nil {
		t.Fatalf("quick gate unexpectedly caught the section corruption: %v", err)
	}

	m2 := compileSample(t)
	pm2 := NewManager(vm.Builtins()).VerifyEach(true).
		Add(RenameMainPass{}, sectionScramblerPass{}, NewCoveragePass(1))
	err := pm2.Run(m2)
	if err == nil {
		t.Fatal("verify-each missed the corrupted section attribute")
	}
	if !strings.Contains(err.Error(), "SectionScramblerPass") {
		t.Fatalf("error does not name the offending pass: %v", err)
	}
	if !strings.Contains(err.Error(), analysis.IDBadSection) {
		t.Fatalf("error does not carry the catalog ID %s: %v", analysis.IDBadSection, err)
	}
	if !errors.Is(err, analysis.ErrDiagnostics) {
		t.Fatalf("verify-each failure not errors.Is-able as diagnostics: %v", err)
	}
}

func TestVerifyEachQuietOnHealthyPipeline(t *testing.T) {
	m := compileSample(t)
	pm := NewManager(vm.Builtins()).VerifyEach(true)
	pm.Add(ClosureXPipeline(true)...)
	pm.Add(NewCoveragePass(1))
	if err := pm.Run(m); err != nil {
		t.Fatalf("verify-each flagged the canonical pipeline: %v", err)
	}
}

func TestCoveragePassRejectsPreexistingDuplicateProbes(t *testing.T) {
	m := ir.NewModule("t")
	f := &ir.Func{Name: "f", NumRegs: 1, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpCov, Dst: -1, Imm: 7},
			{Op: ir.OpBr, Dst: -1, Targets: [2]int{1, 0}},
		}},
		{Instrs: []ir.Instr{
			{Op: ir.OpCov, Dst: -1, Imm: 7}, // hand-placed duplicate
			{Op: ir.OpRet, A: -1, Dst: -1},
		}},
	}}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	err := NewCoveragePass(1).Run(m)
	if err == nil {
		t.Fatal("duplicate pre-existing probes accepted (collisions used to be silently ignored)")
	}
	if !errors.Is(err, analysis.ErrDiagnostics) {
		t.Fatalf("collision error not errors.Is-able as diagnostics: %v", err)
	}
	if !strings.Contains(err.Error(), analysis.IDCovCollision) {
		t.Fatalf("collision error missing catalog ID %s: %v", analysis.IDCovCollision, err)
	}
}

// TestCoveragePassProbesCollisionsApart seeds a probe squatting on another
// block's preferred hash slot; the pass must deterministically assign the
// next free slot instead of silently aliasing the two blocks.
func TestCoveragePassProbesCollisionsApart(t *testing.T) {
	const seed = 99
	pref := int64(covID(seed, "f", 1)) // block 1's preferred slot
	m := ir.NewModule("t")
	f := &ir.Func{Name: "f", NumRegs: 1, Blocks: []*ir.Block{
		{Instrs: []ir.Instr{
			{Op: ir.OpCov, Dst: -1, Imm: pref}, // squatter
			{Op: ir.OpBr, Dst: -1, Targets: [2]int{1, 0}},
		}},
		{Instrs: []ir.Instr{{Op: ir.OpBr, Dst: -1, Targets: [2]int{2, 0}}}},
		{Instrs: []ir.Instr{{Op: ir.OpRet, A: -1, Dst: -1}}},
	}}
	if err := m.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	if err := NewCoveragePass(seed).Run(m); err != nil {
		t.Fatal(err)
	}
	seen := map[int64][]int{}
	for bi, b := range f.Blocks {
		if len(b.Instrs) == 0 || b.Instrs[0].Op != ir.OpCov {
			t.Fatalf("block %d not instrumented", bi)
		}
		id := b.Instrs[0].Imm
		seen[id] = append(seen[id], bi)
	}
	for id, blocks := range seen {
		if len(blocks) > 1 {
			t.Fatalf("probe ID %d assigned to blocks %v", id, blocks)
		}
	}
	if got, want := f.Blocks[1].Instrs[0].Imm, (pref+1)%covSpace; got != want {
		t.Fatalf("displaced block probed to %d, want the deterministic next slot %d", got, want)
	}
	// The repaired module satisfies the collision lint.
	if ds := analysis.Lint(m).ByID(analysis.IDCovCollision); len(ds) != 0 {
		t.Fatalf("lint still sees collisions after probing:\n%s", ds)
	}
}

func TestCoveragePassIdempotentAfterProbing(t *testing.T) {
	m := compileSample(t)
	if err := (RenameMainPass{}).Run(m); err != nil {
		t.Fatal(err)
	}
	if err := NewCoveragePass(3).Run(m); err != nil {
		t.Fatal(err)
	}
	before := CountProbes(m)
	if err := NewCoveragePass(3).Run(m); err != nil {
		t.Fatalf("re-run over instrumented module: %v", err)
	}
	if after := CountProbes(m); after != before {
		t.Fatalf("re-run changed probe count %d -> %d", before, after)
	}
}
