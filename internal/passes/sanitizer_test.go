package passes

import (
	"testing"

	"closurex/internal/analysis"
	"closurex/internal/analysis/sanitize"
	"closurex/internal/ir"
	"closurex/internal/vm"
)

// sanitizeSample runs the ClosureX pipeline + SanitizerPass + coverage over
// the shared sample program.
func sanitizeSample(t *testing.T, elide bool) *ir.Module {
	t.Helper()
	m := compileSample(t)
	pm := NewManager(vm.Builtins())
	pm.Add(ClosureXPipeline(false)...)
	pm.Add(SanitizerPass{Elide: elide})
	pm.Add(NewCoveragePass(1))
	if err := pm.Run(m); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return m
}

func countOps(m *ir.Module, op ir.Op) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == op {
					n++
				}
			}
		}
	}
	return n
}

func TestSanitizerPassCoversEveryAccess(t *testing.T) {
	m := sanitizeSample(t, false)
	if !m.Sanitized {
		t.Fatal("module not marked Sanitized")
	}
	loads := countOps(m, ir.OpLoad) + countOps(m, ir.OpStore)
	checks := countOps(m, ir.OpSanCheck)
	if loads == 0 {
		t.Fatal("sample has no accesses")
	}
	if checks != loads {
		t.Fatalf("without elision every access must be checked: %d checks, %d accesses", checks, loads)
	}
	// The structural verifier (including CLX112/CLX113) accepts the result.
	if ds := analysis.Verify(m, vm.Builtins()); ds.HasErrors() {
		t.Fatalf("verifier rejects sanitized module: %v", ds.Errors())
	}
}

func TestSanitizerPassElidesAndStaysVerified(t *testing.T) {
	m := sanitizeSample(t, true)
	rep := sanitize.ReportModule(m)
	checks, elided := rep.Totals()
	if elided == 0 {
		t.Fatal("elision analysis proved nothing on the sample")
	}
	total := countOps(m, ir.OpLoad) + countOps(m, ir.OpStore)
	if checks+elided != total {
		t.Fatalf("checks(%d)+elided(%d) != accesses(%d)", checks, elided, total)
	}
	if ds := analysis.Verify(m, vm.Builtins()); ds.HasErrors() {
		t.Fatalf("verifier rejects elided module: %v", ds.Errors())
	}
}

func TestSanitizerPassIdempotent(t *testing.T) {
	m := sanitizeSample(t, true)
	before := countOps(m, ir.OpSanCheck)
	if err := (SanitizerPass{Elide: true}).Run(m); err != nil {
		t.Fatal(err)
	}
	if after := countOps(m, ir.OpSanCheck); after != before {
		t.Fatalf("second run changed check count: %d -> %d", before, after)
	}
}

func TestSanitizerPassPreservesCoverageGeometry(t *testing.T) {
	plain := compileSample(t)
	pm := NewManager(vm.Builtins())
	pm.Add(ClosureXPipeline(false)...)
	pm.Add(NewCoveragePass(1))
	if err := pm.Run(plain); err != nil {
		t.Fatal(err)
	}
	san := sanitizeSample(t, true)
	if a, b := CountProbes(plain), CountProbes(san); a != b {
		t.Fatalf("probe counts diverge: plain=%d sanitized=%d", a, b)
	}
	probeIDs := func(m *ir.Module) []int64 {
		var ids []int64
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op == ir.OpCov {
						ids = append(ids, b.Instrs[i].Imm)
					}
				}
			}
		}
		return ids
	}
	a, b := probeIDs(plain), probeIDs(san)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d diverges: %d vs %d", i, a[i], b[i])
		}
	}
}

// --- CLX111/112/113 verifier rules ---

// sanVerify builds a tiny hand-rolled sanitized function and runs the
// structural verifier over it.
func sanVerify(t *testing.T, mutate func(f *ir.Func)) analysis.Diagnostics {
	t.Helper()
	b := ir.NewBuilder("f", 0)
	off := b.Alloca(8)
	fp := b.FrameAddr(off)
	v := b.Const(7)
	b.Store(fp, v, 0, 8)
	x := b.Load(fp, 0, 8)
	b.Ret(x)
	f, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m := &ir.Module{Funcs: []*ir.Func{f}}
	if err := (SanitizerPass{}).Run(m); err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(f)
	}
	return analysis.Verify(m, vm.Builtins())
}

func TestVerifySanitizedModuleClean(t *testing.T) {
	if ds := sanVerify(t, nil); len(ds.ByID(analysis.IDBadSanCheck))+
		len(ds.ByID(analysis.IDOrphanCheck))+len(ds.ByID(analysis.IDUncheckedAcc)) != 0 {
		t.Fatalf("clean sanitized module flagged: %v", ds)
	}
}

func TestVerifyCLX111BadDirection(t *testing.T) {
	ds := sanVerify(t, func(f *ir.Func) {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpSanCheck {
					b.Instrs[i].B = 2
					return
				}
			}
		}
	})
	if len(ds.ByID(analysis.IDBadSanCheck)) == 0 {
		t.Fatalf("bad sancheck direction not flagged: %v", ds)
	}
}

func TestVerifyCLX112OrphanCheck(t *testing.T) {
	ds := sanVerify(t, func(f *ir.Func) {
		// Desynchronize a check from its access by flipping its offset.
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpSanCheck {
					b.Instrs[i].Imm += 4
					return
				}
			}
		}
	})
	if len(ds.ByID(analysis.IDOrphanCheck)) == 0 {
		t.Fatalf("orphaned sancheck not flagged: %v", ds)
	}
}

func TestVerifyCLX113UncheckedAccess(t *testing.T) {
	ds := sanVerify(t, func(f *ir.Func) {
		// Delete the first sancheck: its access becomes unchecked.
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpSanCheck {
					b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
					return
				}
			}
		}
	})
	if len(ds.ByID(analysis.IDUncheckedAcc)) == 0 {
		t.Fatalf("unchecked access in sanitized module not flagged: %v", ds)
	}
}

func TestVerifyElidedAccessNotFlagged(t *testing.T) {
	// SanElide is the sanctioned way to skip a check: CLX113 must accept it.
	ds := sanVerify(t, func(f *ir.Func) {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpSanCheck {
					b.Instrs[i+1].SanElide = true
					b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
					return
				}
			}
		}
	})
	if n := len(ds.ByID(analysis.IDUncheckedAcc)); n != 0 {
		t.Fatalf("elided access flagged by CLX113: %v", ds)
	}
}
