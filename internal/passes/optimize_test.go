package passes

import (
	"testing"

	"closurex/internal/ir"
	"closurex/internal/lower"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

func lookupTarget(t *testing.T, name string) *targets.Target {
	t.Helper()
	tgt := targets.Get(name)
	if tgt == nil {
		t.Fatalf("unknown target %s", name)
	}
	return tgt
}

func optCompile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := lower.Compile("t.c", src, vm.Builtins())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runMain(t *testing.T, m *ir.Module) vm.Result {
	t.Helper()
	v, err := vm.New(m, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	name := "main"
	if m.Func(name) == nil {
		name = TargetMain
	}
	return v.Call(name)
}

func countInstr(m *ir.Module, op ir.Op) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == op {
					n++
				}
			}
		}
	}
	return n
}

func TestConstFoldReducesBinOps(t *testing.T) {
	m := optCompile(t, `
int main(void) {
	int a = 2 + 3 * 4;
	int b = (a > 10) ? 100 : 200;
	return a + b - 14;
}`)
	before := countInstr(m, ir.OpBin)
	pm := NewManager(vm.Builtins())
	pm.Add(OptimizePipeline()...)
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	after := countInstr(m, ir.OpBin)
	if after >= before {
		t.Fatalf("OpBin count %d -> %d; nothing folded", before, after)
	}
	if res := runMain(t, m); res.Fault != nil || res.Ret != 100 {
		t.Fatalf("optimized result = %d (%v), want 100", res.Ret, res.Fault)
	}
}

func TestConstFoldPreservesDivByZeroFault(t *testing.T) {
	m := optCompile(t, `
int main(void) {
	int z = 0;
	return 7 / z;
}`)
	pm := NewManager(vm.Builtins())
	pm.Add(OptimizePipeline()...)
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	res := runMain(t, m)
	if res.Fault == nil || res.Fault.Kind != vm.FaultDivByZero {
		t.Fatalf("fault = %v, want DivByZero preserved", res.Fault)
	}
}

func TestConstBranchBecomesDeadBlock(t *testing.T) {
	m := optCompile(t, `
int main(void) {
	if (1 > 2) {
		return 111;
	}
	return 42;
}`)
	blocksBefore := m.NumBlocks()
	pm := NewManager(vm.Builtins())
	pm.Add(OptimizePipeline()...)
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	if m.NumBlocks() >= blocksBefore {
		t.Fatalf("blocks %d -> %d; dead branch not removed", blocksBefore, m.NumBlocks())
	}
	if res := runMain(t, m); res.Ret != 42 {
		t.Fatalf("result = %d", res.Ret)
	}
}

func TestDeadBlockRemapsTargets(t *testing.T) {
	// Build: entry -> b3 directly, with b1/b2 dead; the surviving branch
	// targets must be remapped after compaction.
	b := ir.NewBuilder("f", 1)
	dead1 := b.NewBlock()
	dead2 := b.NewBlock()
	live := b.NewBlock()
	exit := b.NewBlock()
	b.Br(live)
	b.SetBlock(dead1)
	b.Br(dead2)
	b.SetBlock(dead2)
	b.Ret(-1)
	b.SetBlock(live)
	b.CondBr(0, exit, live)
	b.SetBlock(exit)
	b.Ret(0)
	m := ir.NewModule("t")
	_ = m.AddFunc(b.F)
	if err := (DeadBlockPass{}).Run(m); err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(m, nil); err != nil {
		t.Fatalf("verify after dead-block removal: %v", err)
	}
	if len(b.F.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(b.F.Blocks))
	}
	v, _ := vm.New(m, vm.Options{})
	if res := v.Call("f", 1); res.Fault != nil || res.Ret != 1 {
		t.Fatalf("remapped function broken: %+v", res)
	}
}

// Semantics preservation across every benchmark target: optimized and
// unoptimized builds must agree on all seeds and all planted triggers.
func TestOptimizationPreservesTargetSemantics(t *testing.T) {
	for _, name := range []string{"gpmf-parser", "zlib", "md4c", "libbpf"} {
		name := name
		t.Run(name, func(t *testing.T) {
			tgt := lookupTarget(t, name)
			plain := optCompile(t, tgt.Source)
			opt := plain.Clone()
			pm := NewManager(vm.Builtins())
			pm.Add(OptimizePipeline()...)
			if err := pm.Run(opt); err != nil {
				t.Fatal(err)
			}
			inputs := tgt.Seeds()
			for i := range tgt.Bugs {
				inputs = append(inputs, tgt.Bugs[i].Trigger)
			}
			for i, in := range inputs {
				r1 := runWith(t, plain, in)
				r2 := runWith(t, opt, in)
				if r1.Ret != r2.Ret || r1.Exited != r2.Exited ||
					(r1.Fault == nil) != (r2.Fault == nil) {
					t.Fatalf("input %d diverged: %+v vs %+v", i, r1, r2)
				}
				if r1.Fault != nil && r1.Fault.Kind != r2.Fault.Kind {
					t.Fatalf("input %d fault kind diverged: %v vs %v", i, r1.Fault, r2.Fault)
				}
			}
		})
	}
}

func runWith(t *testing.T, m *ir.Module, input []byte) vm.Result {
	t.Helper()
	v, err := vm.New(m, vm.Options{DeterministicRand: true, RandSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	v.SetInput(input)
	return v.Call("main")
}

func TestDeadCodeEliminationShrinks(t *testing.T) {
	m := optCompile(t, `
int main(void) {
	int unused = 5 * 9;
	int chain = unused + 1;
	int z = 4;
	return z;
}`)
	count := func() int {
		n := 0
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				n += len(b.Instrs)
			}
		}
		return n
	}
	before := count()
	pm := NewManager(vm.Builtins())
	pm.Add(OptimizePipeline()...)
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	if count() >= before {
		t.Fatalf("instructions %d -> %d; DCE removed nothing", before, count())
	}
	if res := runMain(t, m); res.Fault != nil || res.Ret != 4 {
		t.Fatalf("result after DCE: %+v", res)
	}
}

func TestDeadCodeKeepsFaultingOps(t *testing.T) {
	// An unused division must survive DCE (it can fault).
	m := optCompile(t, `
int main(void) {
	int z = 0;
	int unused = 9 / z;
	return 1;
}`)
	pm := NewManager(vm.Builtins())
	pm.Add(OptimizePipeline()...)
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	res := runMain(t, m)
	if res.Fault == nil || res.Fault.Kind != vm.FaultDivByZero {
		t.Fatalf("DCE removed a faulting op: %+v", res)
	}
}

func TestOptimizeThenInstrumentStillVerifies(t *testing.T) {
	m := optCompile(t, sampleSrc)
	pm := NewManager(vm.Builtins())
	pm.Add(OptimizePipeline()...)
	pm.Add(ClosureXPipeline(false)...)
	pm.Add(NewCoveragePass(1))
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	v, _ := vm.New(m, vm.Options{Files: map[string][]byte{"/input": []byte("x")}})
	if res := v.Call(TargetMain); res.Fault != nil || res.Ret != 21 {
		t.Fatalf("optimized+instrumented run: %+v", res)
	}
}
