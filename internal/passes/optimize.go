package passes

import (
	"fmt"

	"closurex/internal/ir"
)

// Optimization passes — the `opt -O1`-flavored half of the pass framework.
// They are semantics-preserving on verified modules and independent of the
// ClosureX instrumentation; closurex-cc exposes them behind -O, and an
// ablation benchmark measures their effect on interpreter throughput.

// OptimizePipeline returns the standard optimization sequence, iterated
// until fixpoint by the passes themselves.
func OptimizePipeline() []Pass {
	return []Pass{ConstFoldPass{}, DeadBlockPass{}, DeadCodePass{}}
}

// ---- ConstFoldPass ----

// ConstFoldPass forward-propagates constants within each basic block:
// OpBin/OpUn over constant operands become OpConst, OpMov of a constant
// becomes OpConst, and OpCondBr on a constant condition becomes OpBr
// (feeding DeadBlockPass). The analysis is per-block and kills facts at
// calls' destination registers only (calls cannot modify other registers).
type ConstFoldPass struct{}

// Name implements Pass.
func (ConstFoldPass) Name() string { return "ConstFoldPass" }

// Description implements Pass.
func (ConstFoldPass) Description() string {
	return "Fold constant expressions and branches inside basic blocks"
}

// Run implements Pass.
func (ConstFoldPass) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			foldBlock(b)
		}
	}
	return nil
}

// foldBlock performs one forward pass over a block.
func foldBlock(b *ir.Block) {
	known := map[int]int64{}
	setConst := func(in *ir.Instr, v int64) {
		*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, A: -1, B: -1, Imm: v, Pos: in.Pos}
		known[in.Dst] = v
	}
	for i := range b.Instrs {
		in := &b.Instrs[i]
		switch in.Op {
		case ir.OpConst:
			known[in.Dst] = in.Imm
		case ir.OpMov:
			if v, ok := known[in.A]; ok {
				setConst(in, v)
			} else {
				delete(known, in.Dst)
			}
		case ir.OpUn:
			if a, ok := known[in.A]; ok {
				var v int64
				switch in.Un {
				case ir.Neg:
					v = -a
				case ir.Not:
					if a == 0 {
						v = 1
					}
				case ir.BNot:
					v = ^a
				}
				setConst(in, v)
			} else {
				delete(known, in.Dst)
			}
		case ir.OpBin:
			a, aok := known[in.A]
			bv, bok := known[in.B]
			if aok && bok {
				if v, ok := evalBin(in.Bin, a, bv); ok {
					setConst(in, v)
					continue
				}
			}
			delete(known, in.Dst)
		case ir.OpCondBr:
			if c, ok := known[in.A]; ok {
				target := in.Targets[1]
				if c != 0 {
					target = in.Targets[0]
				}
				*in = ir.Instr{Op: ir.OpBr, Dst: -1, A: -1, B: -1,
					Targets: [2]int{target, 0}, Pos: in.Pos}
			}
		default:
			if in.Dst >= 0 {
				delete(known, in.Dst)
			}
		}
	}
}

// evalBin folds a binary operation; division by zero is left to run time
// (it must fault, not fold).
func evalBin(op ir.BinOp, a, b int64) (int64, bool) {
	switch op {
	case ir.Add:
		return a + b, true
	case ir.Sub:
		return a - b, true
	case ir.Mul:
		return a * b, true
	case ir.Div:
		if b == 0 {
			return 0, false
		}
		if b == -1 {
			return -a, true
		}
		return a / b, true
	case ir.Rem:
		if b == 0 {
			return 0, false
		}
		if b == -1 {
			return 0, true
		}
		return a % b, true
	case ir.Shl:
		return a << (uint64(b) & 63), true
	case ir.Shr:
		return a >> (uint64(b) & 63), true
	case ir.And:
		return a & b, true
	case ir.Or:
		return a | b, true
	case ir.Xor:
		return a ^ b, true
	case ir.Eq:
		return fold2i(a == b), true
	case ir.Ne:
		return fold2i(a != b), true
	case ir.Lt:
		return fold2i(a < b), true
	case ir.Le:
		return fold2i(a <= b), true
	case ir.Gt:
		return fold2i(a > b), true
	case ir.Ge:
		return fold2i(a >= b), true
	case ir.Ult:
		return fold2i(uint64(a) < uint64(b)), true
	case ir.Ule:
		return fold2i(uint64(a) <= uint64(b)), true
	case ir.Ugt:
		return fold2i(uint64(a) > uint64(b)), true
	case ir.Uge:
		return fold2i(uint64(a) >= uint64(b)), true
	}
	return 0, false
}

func fold2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ---- DeadBlockPass ----

// DeadBlockPass removes blocks unreachable from each function's entry and
// compacts the block list, remapping branch targets.
type DeadBlockPass struct{}

// Name implements Pass.
func (DeadBlockPass) Name() string { return "DeadBlockPass" }

// Description implements Pass.
func (DeadBlockPass) Description() string { return "Remove unreachable basic blocks" }

// Run implements Pass.
func (DeadBlockPass) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		if err := dropDeadBlocks(f); err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
	}
	return nil
}

func dropDeadBlocks(f *ir.Func) error {
	reachable := make([]bool, len(f.Blocks))
	work := []int{0}
	reachable[0] = true
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		t := f.Blocks[bi].Terminator()
		if t == nil {
			return fmt.Errorf("block %d unterminated", bi)
		}
		var succs []int
		switch t.Op {
		case ir.OpBr:
			succs = []int{t.Targets[0]}
		case ir.OpCondBr:
			succs = []int{t.Targets[0], t.Targets[1]}
		}
		for _, s := range succs {
			if !reachable[s] {
				reachable[s] = true
				work = append(work, s)
			}
		}
	}
	remap := make([]int, len(f.Blocks))
	var kept []*ir.Block
	for i, b := range f.Blocks {
		if reachable[i] {
			remap[i] = len(kept)
			kept = append(kept, b)
		} else {
			remap[i] = -1
		}
	}
	if len(kept) == len(f.Blocks) {
		return nil
	}
	for _, b := range kept {
		t := t0(b)
		switch t.Op {
		case ir.OpBr:
			t.Targets[0] = remap[t.Targets[0]]
		case ir.OpCondBr:
			t.Targets[0] = remap[t.Targets[0]]
			t.Targets[1] = remap[t.Targets[1]]
		}
	}
	f.Blocks = kept
	return nil
}

func t0(b *ir.Block) *ir.Instr { return &b.Instrs[len(b.Instrs)-1] }

// ---- DeadCodePass ----

// DeadCodePass removes pure instructions whose destination register is
// never read anywhere in the function (a whole-function read census is
// sound without SSA: a register no instruction reads cannot matter).
// Iterates to fixpoint, since removing an instruction removes its reads.
type DeadCodePass struct{}

// Name implements Pass.
func (DeadCodePass) Name() string { return "DeadCodePass" }

// Description implements Pass.
func (DeadCodePass) Description() string {
	return "Remove pure instructions writing registers that are never read"
}

// Run implements Pass.
func (DeadCodePass) Run(m *ir.Module) error {
	for _, f := range m.Funcs {
		for dceOnce(f) {
		}
	}
	return nil
}

// pureOp reports whether an instruction has no effect beyond its Dst.
// Div/Rem may fault and loads may trip the sanitizer, so both stay.
func pureOp(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpConst, ir.OpMov, ir.OpUn, ir.OpGlobalAddr, ir.OpFrameAddr:
		return true
	case ir.OpBin:
		return in.Bin != ir.Div && in.Bin != ir.Rem
	}
	return false
}

func dceOnce(f *ir.Func) bool {
	read := make([]bool, f.NumRegs)
	note := func(r int) {
		if r >= 0 && r < len(read) {
			read[r] = true
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpConst, ir.OpGlobalAddr, ir.OpFrameAddr:
			case ir.OpMov, ir.OpUn:
				note(in.A)
			case ir.OpBin:
				note(in.A)
				note(in.B)
			case ir.OpLoad:
				note(in.A)
			case ir.OpStore:
				note(in.A)
				note(in.B)
			case ir.OpCall:
				for _, a := range in.Args {
					note(a)
				}
			case ir.OpRet, ir.OpCondBr:
				note(in.A)
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for i := range b.Instrs {
			in := b.Instrs[i]
			if pureOp(&in) && in.Dst >= 0 && in.Dst < len(read) && !read[in.Dst] {
				changed = true
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return changed
}
