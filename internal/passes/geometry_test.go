package passes

import (
	"testing"

	"closurex/internal/fuzz"
	"closurex/internal/ir"
)

// The harness-audit geometry analysis reconstructs CoveragePass' preferred
// probe slots through PreferredProbeID; if the two ever drift, every probe
// would read as collision-displaced. A tiny module has no collisions, so
// every committed Imm must equal its preferred slot exactly.
func TestPreferredProbeIDMatchesAssignment(t *testing.T) {
	m := compileSample(t)
	if err := (NewCoveragePass(7)).Run(m); err != nil {
		t.Fatal(err)
	}
	probes, displaced := 0, 0
	for _, f := range m.Funcs {
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				if b.Instrs[ii].Op != ir.OpCov {
					continue
				}
				probes++
				if b.Instrs[ii].Imm != PreferredProbeID(7, f.Name, bi) {
					displaced++
				}
			}
		}
	}
	if probes == 0 {
		t.Fatal("sample module carries no probes")
	}
	if displaced != 0 {
		t.Fatalf("%d/%d probes differ from PreferredProbeID; the audit's preferred-slot reconstruction drifted from CoveragePass", displaced, probes)
	}
}

// CovMapCells is the probe ID space CoveragePass assigns into; the runtime
// bitmap must be exactly that size or probes would index out of range (or
// alias by truncation).
func TestCovMapCellsMatchesRuntimeBitmap(t *testing.T) {
	if CovMapCells != fuzz.MapSize {
		t.Fatalf("passes.CovMapCells = %d, fuzz.MapSize = %d; probe ID space and runtime bitmap diverged", CovMapCells, fuzz.MapSize)
	}
}
