// Package passes implements the ClosureX instrumentation pipeline — the
// paper's Table 3 — over the project IR, mirroring the LLVM passes of the
// original system:
//
//	RenameMainPass  rename target's main            (setName)
//	HeapPass        track target's heap memory      (replaceAllUsesWith)
//	FilePass        track target's file descriptors (replaceAllUsesWith)
//	GlobalPass      move writable globals into closure_global_section (setSection)
//	ExitPass        rename target's exit calls      (replaceAllUsesWith)
//
// plus the CoveragePass both fuzzing configurations share (the stand-in for
// AFL++'s Sanitizer-Coverage pcguard instrumentation) and the optional
// DeferInitPass from the paper's future-work section.
package passes

import (
	"fmt"

	"closurex/internal/analysis"
	"closurex/internal/analysis/interproc"
	"closurex/internal/ir"
)

// TargetMain is the name the target's entry point carries after
// RenameMainPass, and the function every execution mechanism invokes.
const TargetMain = "target_main"

// InitFunc is the optional deferred-initialization routine recognized by
// DeferInitPass: a niladic function whose work is input-independent.
const InitFunc = "closurex_init"

// Pass is one IR-to-IR transformation.
type Pass interface {
	Name() string
	Description() string
	Run(m *ir.Module) error
}

// Manager runs a pipeline of passes, verifying the module after each one
// (like `opt -verify-each`).
type Manager struct {
	passes     []Pass
	builtins   map[string]bool
	verifyEach bool
}

// NewManager returns an empty pipeline; builtins is the callee set the
// verifier accepts.
func NewManager(builtins map[string]bool) *Manager {
	return &Manager{builtins: builtins}
}

// Add appends a pass.
func (pm *Manager) Add(p ...Pass) *Manager {
	pm.passes = append(pm.passes, p...)
	return pm
}

// VerifyEach arms the deep analysis verifier between passes: in addition
// to the quick structural ir.Verify gate, the full analysis.Verify
// (definite assignment, section attributes, every violation collected)
// re-checks the module after every pass, and a failure names the pass that
// broke the invariant. This is the `opt -verify-each` workflow; the
// verifyeach build tag turns it on for every build in the test suite.
func (pm *Manager) VerifyEach(on bool) *Manager {
	pm.verifyEach = on
	return pm
}

// Passes lists the registered passes in order.
func (pm *Manager) Passes() []Pass { return pm.passes }

// Run applies every pass to m in order.
func (pm *Manager) Run(m *ir.Module) error {
	for _, p := range pm.passes {
		if err := p.Run(m); err != nil {
			return fmt.Errorf("pass %s: %w", p.Name(), err)
		}
		if err := ir.Verify(m, pm.builtins); err != nil {
			return fmt.Errorf("after pass %s: %w", p.Name(), err)
		}
		if pm.verifyEach {
			if ds := analysis.Verify(m, pm.builtins); ds.HasErrors() {
				return fmt.Errorf("verify-each: pass %s left the module invalid: %w", p.Name(), ds.Err())
			}
			// Re-derive every interprocedural elision claim: an unsound
			// TrackElide/FileElide mark or drifted may-write metadata is a
			// pipeline bug on par with a structural violation.
			if ds := interproc.Audit(m); ds.HasErrors() {
				return fmt.Errorf("verify-each: pass %s broke an elision claim: %w", p.Name(), ds.Err())
			}
		}
	}
	return nil
}

// ClosureXPipeline returns the paper's pass pipeline in its canonical
// order, optionally including the DeferInitPass extension.
func ClosureXPipeline(deferInit bool) []Pass {
	ps := []Pass{
		RenameMainPass{},
		ExitPass{},
		HeapPass{},
		FilePass{},
		GlobalPass{},
	}
	if deferInit {
		ps = append(ps, DeferInitPass{})
	}
	return ps
}

// CoverageOnlyPipeline returns the instrumentation a plain AFL++-style
// build gets: main renamed (so mechanisms have a uniform entry point) and
// coverage, with none of the state-restoration hooks.
func CoverageOnlyPipeline(seed uint64) []Pass {
	return []Pass{RenameMainPass{}, NewCoveragePass(seed)}
}

// ---- RenameMainPass ----

// RenameMainPass renames the target's main to target_main and rewrites the
// call sites, exactly as the paper's pass calls setName.
type RenameMainPass struct{}

// Name implements Pass.
func (RenameMainPass) Name() string { return "RenameMainPass" }

// Description implements Pass.
func (RenameMainPass) Description() string { return "Rename target's main" }

// Run implements Pass.
func (RenameMainPass) Run(m *ir.Module) error {
	if m.Func(TargetMain) != nil {
		return nil // idempotent: already renamed
	}
	if m.Func("main") == nil {
		return fmt.Errorf("module has no main function")
	}
	return m.RenameFunc("main", TargetMain)
}

// ---- ExitPass ----

// ExitPass replaces the target's exit() calls with the exitHook that
// longjmps back to the harness. Calls inside the runtime (builtins) are
// untouched — only instrumented target code is rewritten, as in the paper.
type ExitPass struct{}

// Name implements Pass.
func (ExitPass) Name() string { return "ExitPass" }

// Description implements Pass.
func (ExitPass) Description() string { return "Rename target's exit calls" }

// Run implements Pass.
func (ExitPass) Run(m *ir.Module) error {
	m.RewriteCalls("exit", "closurex_exit")
	return nil
}

// ---- HeapPass ----

// HeapPass routes the malloc family through the tracking wrappers that feed
// the harness's chunk map (Figure 5).
type HeapPass struct{}

// Name implements Pass.
func (HeapPass) Name() string { return "HeapPass" }

// Description implements Pass.
func (HeapPass) Description() string { return "Inject tracking of target's heap memory" }

// Run implements Pass.
func (HeapPass) Run(m *ir.Module) error {
	for _, pair := range [][2]string{
		{"malloc", "closurex_malloc"},
		{"calloc", "closurex_calloc"},
		{"realloc", "closurex_realloc"},
		{"free", "closurex_free"},
	} {
		m.RewriteCalls(pair[0], pair[1])
	}
	return nil
}

// ---- FilePass ----

// FilePass routes fopen/fclose through the tracking wrappers that feed the
// harness's file-handle map.
type FilePass struct{}

// Name implements Pass.
func (FilePass) Name() string { return "FilePass" }

// Description implements Pass.
func (FilePass) Description() string { return "Inject tracking of target's file descriptors" }

// Run implements Pass.
func (FilePass) Run(m *ir.Module) error {
	m.RewriteCalls("fopen", "closurex_fopen")
	m.RewriteCalls("fclose", "closurex_fclose")
	return nil
}

// ---- GlobalPass ----

// GlobalPass moves every potentially-modifiable global (isConstant() ==
// false) into closure_global_section so the harness can snapshot and
// restore exactly the mutable global state (Figures 3 and 4).
type GlobalPass struct{}

// Name implements Pass.
func (GlobalPass) Name() string { return "GlobalPass" }

// Description implements Pass.
func (GlobalPass) Description() string {
	return "Move target's writable globals into a separate memory section"
}

// Run implements Pass.
func (GlobalPass) Run(m *ir.Module) error {
	for _, g := range m.Globals {
		if !g.Const {
			g.Section = ir.SectionClosure
		}
	}
	return nil
}

// ---- DeferInitPass (future-work extension) ----

// DeferInitPass hoists the target's input-independent initialization out of
// the fuzzing loop: calls to the InitFunc convention routine are removed
// from the instrumented code (their destination registers become 0), and
// the harness instead invokes InitFunc once before the loop and marks the
// resulting heap chunks and descriptors as persistent.
type DeferInitPass struct{}

// Name implements Pass.
func (DeferInitPass) Name() string { return "DeferInitPass" }

// Description implements Pass.
func (DeferInitPass) Description() string {
	return "Hoist input-independent initialization out of the fuzzing loop"
}

// Run implements Pass.
func (DeferInitPass) Run(m *ir.Module) error {
	initFn := m.Func(InitFunc)
	if initFn == nil {
		return nil // nothing to hoist
	}
	if initFn.NumParams != 0 {
		return fmt.Errorf("%s must take no parameters", InitFunc)
	}
	for _, f := range m.Funcs {
		if f.Name == InitFunc {
			continue
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == ir.OpCall && in.Callee == InitFunc {
					// Replace the hoisted call with `dst = 0`.
					*in = ir.Instr{Op: ir.OpConst, Dst: in.Dst, A: -1, B: -1, Imm: 0, Pos: in.Pos}
				}
			}
		}
	}
	return nil
}

// ---- CoveragePass ----

// CoveragePass inserts a coverage probe at the head of every basic block.
// Probe IDs are deterministic hashes of (seed, function, block), matching
// the role of AFL++'s compile-time random block IDs; both the ClosureX and
// the baseline build use this same pass, as the paper's evaluation fixes
// coverage instrumentation across configurations.
type CoveragePass struct {
	seed uint64
}

// NewCoveragePass returns a coverage pass with the given ID seed.
func NewCoveragePass(seed uint64) CoveragePass { return CoveragePass{seed: seed} }

// Name implements Pass.
func (CoveragePass) Name() string { return "CoveragePass" }

// Description implements Pass.
func (CoveragePass) Description() string { return "Insert hit-count edge-coverage probes" }

// covSpace is the number of distinct probe IDs (the 16-bit coverage map).
const covSpace = 1 << 16

// CovMapCells is covSpace for external clients: the number of coverage-map
// cells a probe ID can land in. harnessaudit's geometry analysis uses it as
// the default saturation denominator; fuzz.MapSize mirrors it on the
// runtime side (cross-checked by a test).
const CovMapCells = covSpace

// PreferredProbeID returns the probe ID covID would assign to (fn, block)
// before collision repair. A probe whose committed Imm differs was
// displaced by linear probing — the displacement density is harnessaudit's
// collision metric.
func PreferredProbeID(seed uint64, fn string, block int) int64 {
	return int64(covID(seed, fn, block))
}

// Run implements Pass. Probe IDs are collision-free by construction: the
// hash is the preferred slot, and an occupied slot deterministically probes
// forward (id+1 mod 2^16), so two blocks can never alias one coverage cell
// — a collision used to be silently ignored and cost both coverage signal
// and sentinel sensitivity. Pre-existing probes (idempotent re-runs,
// hand-instrumented modules) claim their IDs first; duplicates among them
// cannot be repaired without moving probes under a fuzzer's feet, so they
// surface as structured diagnostics instead.
func (p CoveragePass) Run(m *ir.Module) error {
	type site struct {
		fn     string
		bi, ii int
	}
	used := make(map[int64]site)
	var ds analysis.Diagnostics
	for _, f := range m.Funcs {
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.Op != ir.OpCov {
					continue
				}
				if prev, dup := used[in.Imm]; dup {
					ds = append(ds, analysis.Diagnostic{
						ID: analysis.IDCovCollision, Sev: analysis.SevError,
						Pass: "CoveragePass", Func: f.Name, Block: bi, Instr: ii, Line: in.Pos,
						Msg: fmt.Sprintf("existing probe ID %d collides with %s b%d#%d",
							in.Imm, prev.fn, prev.bi, prev.ii),
					})
					continue
				}
				used[in.Imm] = site{f.Name, bi, ii}
			}
		}
	}
	if err := ds.Err(); err != nil {
		return err
	}
	for _, f := range m.Funcs {
		for bi, b := range f.Blocks {
			if len(b.Instrs) > 0 && b.Instrs[0].Op == ir.OpCov {
				continue // idempotent
			}
			if len(used) >= covSpace {
				return fmt.Errorf("pass CoveragePass: %w: module has more than %d blocks; the coverage map cannot give each a distinct cell",
					analysis.ErrDiagnostics, covSpace)
			}
			id := int64(covID(p.seed, f.Name, bi))
			for {
				if _, taken := used[id]; !taken {
					break
				}
				id = (id + 1) % covSpace
			}
			used[id] = site{f.Name, bi, 0}
			probe := ir.Instr{Op: ir.OpCov, Dst: -1, A: -1, B: -1, Imm: id}
			if len(b.Instrs) > 0 {
				probe.Pos = b.Instrs[0].Pos
			}
			b.Instrs = append([]ir.Instr{probe}, b.Instrs...)
		}
	}
	return nil
}

// covID hashes a block's identity into a 16-bit map location.
func covID(seed uint64, fn string, block int) uint64 {
	h := seed ^ 14695981039346656037
	for i := 0; i < len(fn); i++ {
		h = (h ^ uint64(fn[i])) * 1099511628211
	}
	h = (h ^ uint64(block)) * 1099511628211
	return h & 0xffff
}

// TotalEdges returns the static bound on distinct coverage-map edges for a
// module instrumented by CoveragePass with call-transparent semantics: one
// per intra-function CFG edge (1 for Br, 2 for CondBr), one entry edge per
// direct call to a module function, and one root-entry edge per function
// (any function may be invoked directly by the harness). This is the
// denominator of Table 6's coverage percentages.
func TotalEdges(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		n++ // potential root entry (prev_loc == 0)
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpBr:
					n++
				case ir.OpCondBr:
					n += 2
				case ir.OpCall:
					if m.Func(in.Callee) != nil {
						n++
					}
				}
			}
		}
	}
	return n
}

// CountProbes returns the number of coverage probes in the module.
func CountProbes(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpCov {
					n++
				}
			}
		}
	}
	return n
}
