package minc

import "fmt"

// ProgramInfo is the semantic index built by Analyze: name tables the
// lowerer consumes plus validated declarations.
type ProgramInfo struct {
	Prog    *Program
	Globals map[string]*GlobalDecl
	Funcs   map[string]*FuncDecl
}

// Analyze performs declaration-level semantic checks (duplicate names,
// initializer shape, array bounds) and builds the symbol index. Expression
// typing happens during lowering, where the types drive code generation.
func Analyze(prog *Program) (*ProgramInfo, error) {
	info := &ProgramInfo{
		Prog:    prog,
		Globals: make(map[string]*GlobalDecl),
		Funcs:   make(map[string]*FuncDecl),
	}
	errf := func(line int32, format string, args ...interface{}) error {
		return &Error{File: prog.File, Line: line, Msg: fmt.Sprintf(format, args...)}
	}
	for _, g := range prog.Globals {
		if _, dup := info.Globals[g.Name]; dup {
			return nil, errf(g.Line, "global %q redefined", g.Name)
		}
		if g.Type.Kind == TArray && g.Type.ArrayLen <= 0 {
			return nil, errf(g.Line, "global array %q has non-positive length", g.Name)
		}
		if err := checkGlobalInit(prog.File, g); err != nil {
			return nil, err
		}
		info.Globals[g.Name] = g
	}
	for _, f := range prog.Funcs {
		if _, dup := info.Funcs[f.Name]; dup {
			return nil, errf(f.Line, "function %q redefined", f.Name)
		}
		if _, clash := info.Globals[f.Name]; clash {
			return nil, errf(f.Line, "function %q collides with a global", f.Name)
		}
		seen := map[string]bool{}
		for _, p := range f.Params {
			if seen[p.Name] {
				return nil, errf(f.Line, "function %q: duplicate parameter %q", f.Name, p.Name)
			}
			seen[p.Name] = true
		}
		info.Funcs[f.Name] = f
	}
	return info, nil
}

// checkGlobalInit validates the shape of a global initializer.
func checkGlobalInit(file string, g *GlobalDecl) error {
	errf := func(format string, args ...interface{}) error {
		return &Error{File: file, Line: g.Line, Msg: fmt.Sprintf(format, args...)}
	}
	if g.Init == nil {
		if g.Const {
			return errf("const global %q lacks an initializer", g.Name)
		}
		return nil
	}
	switch init := g.Init.(type) {
	case *StrLit:
		if !(g.Type.Kind == TArray && g.Type.Elem.Kind == TChar) {
			return errf("string initializer requires char[] type for %q", g.Name)
		}
		if int64(len(init.Val)+1) > g.Type.Size() {
			return errf("string initializer too long for %q (%d+1 > %d)",
				g.Name, len(init.Val), g.Type.Size())
		}
		return nil
	case *InitList:
		if g.Type.Kind != TArray {
			return errf("brace initializer requires array type for %q", g.Name)
		}
		if int64(len(init.Elems)) > g.Type.ArrayLen {
			return errf("too many initializers for %q (%d > %d)",
				g.Name, len(init.Elems), g.Type.ArrayLen)
		}
		for _, e := range init.Elems {
			if _, err := EvalConst(e); err != nil {
				return errf("non-constant initializer element for %q: %v", g.Name, err)
			}
		}
		return nil
	default:
		if !g.Type.IsScalar() {
			return errf("scalar initializer on non-scalar global %q", g.Name)
		}
		if _, err := EvalConst(g.Init); err != nil {
			return errf("non-constant initializer for %q: %v", g.Name, err)
		}
		return nil
	}
}

// EvalConst evaluates a compile-time constant expression: integer and char
// literals, sizeof, and operators over constants.
func EvalConst(e Expr) (int64, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, nil
	case *SizeofExpr:
		return x.T.Size(), nil
	case *Unary:
		v, err := EvalConst(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case Minus:
			return -v, nil
		case Tilde:
			return ^v, nil
		case Bang:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("operator %s not constant", x.Op)
	case *Binary:
		a, err := EvalConst(x.X)
		if err != nil {
			return 0, err
		}
		b, err := EvalConst(x.Y)
		if err != nil {
			return 0, err
		}
		return evalConstBin(x.Op, a, b)
	case *CastExpr:
		v, err := EvalConst(x.X)
		if err != nil {
			return 0, err
		}
		if x.T.Kind == TChar {
			return int64(byte(v)), nil
		}
		return v, nil
	}
	return 0, fmt.Errorf("expression is not constant")
}

func evalConstBin(op Kind, a, b int64) (int64, error) {
	switch op {
	case Plus:
		return a + b, nil
	case Minus:
		return a - b, nil
	case Star:
		return a * b, nil
	case Slash:
		if b == 0 {
			return 0, fmt.Errorf("constant division by zero")
		}
		if b == -1 {
			return -a, nil
		}
		return a / b, nil
	case Percent:
		if b == 0 {
			return 0, fmt.Errorf("constant modulo by zero")
		}
		if b == -1 {
			return 0, nil
		}
		return a % b, nil
	case Shl:
		return a << (uint64(b) & 63), nil
	case Shr:
		return a >> (uint64(b) & 63), nil
	case Amp:
		return a & b, nil
	case Pipe:
		return a | b, nil
	case Caret:
		return a ^ b, nil
	case EqEq:
		return boolInt(a == b), nil
	case NotEq:
		return boolInt(a != b), nil
	case Lt:
		return boolInt(a < b), nil
	case LtEq:
		return boolInt(a <= b), nil
	case Gt:
		return boolInt(a > b), nil
	case GtEq:
		return boolInt(a >= b), nil
	case AndAnd:
		return boolInt(a != 0 && b != 0), nil
	case OrOr:
		return boolInt(a != 0 || b != 0), nil
	}
	return 0, fmt.Errorf("operator %s not constant", op)
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
