package minc

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse("t.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseGlobals(t *testing.T) {
	p := mustParse(t, `
int counter;
const int limit = 10 + 2;
char name[8] = "hi";
int table[4] = {1, 2, 3, 4};
char *cursor;
int **pp;
`)
	if len(p.Globals) != 6 {
		t.Fatalf("globals = %d, want 6", len(p.Globals))
	}
	g := p.Globals[1]
	if !g.Const || g.Name != "limit" {
		t.Fatalf("limit mis-parsed: %+v", g)
	}
	if v, err := EvalConst(g.Init); err != nil || v != 12 {
		t.Fatalf("limit init = %d, %v", v, err)
	}
	if p.Globals[2].Type.Kind != TArray || p.Globals[2].Type.ArrayLen != 8 {
		t.Fatalf("name type = %s", p.Globals[2].Type)
	}
	if p.Globals[4].Type.Kind != TPtr || p.Globals[4].Type.Elem.Kind != TChar {
		t.Fatalf("cursor type = %s", p.Globals[4].Type)
	}
	if p.Globals[5].Type.Elem.Kind != TPtr {
		t.Fatalf("pp type = %s", p.Globals[5].Type)
	}
}

func TestParseStruct(t *testing.T) {
	p := mustParse(t, `
struct header {
	int magic;
	char tag[4];
	int length;
	struct header *next;
};
struct header registry;
`)
	if len(p.Structs) != 1 {
		t.Fatalf("structs = %d", len(p.Structs))
	}
	sd := p.Structs[0]
	if sd.Name != "header" || len(sd.Fields) != 4 {
		t.Fatalf("struct = %+v", sd)
	}
	// Layout: magic@0, tag@8 (4 bytes), length@16 (realigned to 8), next@24.
	wantOff := []int64{0, 8, 16, 24}
	for i, f := range sd.Fields {
		if f.Offset != wantOff[i] {
			t.Fatalf("field %s offset %d, want %d", f.Name, f.Offset, wantOff[i])
		}
	}
	if sd.Size != 32 {
		t.Fatalf("struct size = %d, want 32", sd.Size)
	}
	if p.Globals[0].Type.Kind != TStruct {
		t.Fatalf("registry type = %s", p.Globals[0].Type)
	}
}

func TestParseStructErrors(t *testing.T) {
	cases := map[string]string{
		"self-containing": `struct s { struct s inner; };`,
		"dup field":       `struct s { int a; int a; };`,
		"redefined":       `struct s { int a; }; struct s { int b; };`,
		"unknown struct":  `struct nope *p;`,
		"void field":      `struct s { void v; };`,
	}
	for name, src := range cases {
		if _, err := Parse("t.c", src); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestParseFunctionAndStatements(t *testing.T) {
	p := mustParse(t, `
int sum(int n) {
	int total = 0;
	for (int i = 1; i <= n; i++) {
		if (i % 2 == 0) continue;
		total += i;
	}
	while (total > 100) { total -= 100; break; }
	return total;
}
void noop(void) { return; }
`)
	if len(p.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(p.Funcs))
	}
	f := p.Funcs[0]
	if f.Name != "sum" || len(f.Params) != 1 || f.Ret.Kind != TInt {
		t.Fatalf("sum signature: %+v", f)
	}
	if p.Funcs[1].Ret.Kind != TVoid || len(p.Funcs[1].Params) != 0 {
		t.Fatalf("noop signature: %+v", p.Funcs[1])
	}
}

func TestParseExpressionShapes(t *testing.T) {
	p := mustParse(t, `
int f(int a, int b) {
	int c = a ? b : -a;
	c = a && b || !c;
	c = (a + b) * 2 - a % 3;
	c = a << 2 >> 1 & 0xf | 1 ^ 2;
	c += a == b != 0;
	c = sizeof(int) + sizeof(char*);
	return c;
}
`)
	_ = p
}

func TestPrecedence(t *testing.T) {
	p := mustParse(t, "int g = 2 + 3 * 4;")
	v, err := EvalConst(p.Globals[0].Init)
	if err != nil || v != 14 {
		t.Fatalf("2+3*4 = %d, %v", v, err)
	}
	p = mustParse(t, "int g = (2 + 3) * 4;")
	v, _ = EvalConst(p.Globals[0].Init)
	if v != 20 {
		t.Fatalf("(2+3)*4 = %d", v)
	}
	p = mustParse(t, "int g = 1 << 2 + 1;") // + binds tighter than <<
	v, _ = EvalConst(p.Globals[0].Init)
	if v != 8 {
		t.Fatalf("1<<2+1 = %d, want 8", v)
	}
	p = mustParse(t, "int g = 10 - 4 - 3;") // left assoc
	v, _ = EvalConst(p.Globals[0].Init)
	if v != 3 {
		t.Fatalf("10-4-3 = %d, want 3", v)
	}
}

func TestParsePostfixChains(t *testing.T) {
	mustParse(t, `
struct node { int val; struct node *next; };
int f(struct node *n, char *buf) {
	int x = n->next->val;
	x = buf[x + 1];
	x = (*n).val;
	x++;
	--x;
	return x;
}
`)
}

func TestParseCast(t *testing.T) {
	p := mustParse(t, `
int f(int x) {
	char c = (char)x;
	int *p = (int*)x;
	return (int)c + (int)*p;
}
`)
	_ = p
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing semi":        "int x",
		"bad toplevel":        "42;",
		"unterminated block":  "int f(void) { return 0;",
		"missing paren":       "int f(void { return 0; }",
		"struct param":        "struct s { int a; }; int f(struct s v) { return 0; }",
		"void var":            "void v;",
		"bad expression":      "int f(void) { return +; }",
		"const local":         "int f(void) { const int x = 1; return x; }",
		"assign in bad place": "int f(void) { int 3 = x; return 0; }",
	}
	for name, src := range cases {
		if _, err := Parse("t.c", src); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestAnalyzeChecks(t *testing.T) {
	good := `
int g = 1;
int f(int a, int b) { return a + b; }
`
	prog := mustParse(t, good)
	if _, err := Analyze(prog); err != nil {
		t.Fatalf("Analyze(good): %v", err)
	}
	bad := map[string]string{
		"dup global":        "int g; int g;",
		"dup func":          "int f(void){return 0;} int f(void){return 1;}",
		"func/global clash": "int f; int f(void){return 0;}",
		"dup param":         "int f(int a, int a){return a;}",
		"const no init":     "const int g;",
		"nonconst init":     "int other; int g = other;",
		"string on int":     `int g = "hi";`,
		"braces on scalar":  "int g = {1};",
		"too many inits":    "int g[2] = {1,2,3};",
		"string too long":   `char g[2] = "abc";`,
		"zero-len array":    "int g[0];",
	}
	for name, src := range bad {
		p, err := Parse("t.c", src)
		if err != nil {
			continue // parse-time rejection also acceptable
		}
		if _, err := Analyze(p); err == nil {
			t.Errorf("%s: Analyze succeeded, want error", name)
		}
	}
}

func TestEvalConstForms(t *testing.T) {
	cases := map[string]int64{
		"int g = -5;":           -5,
		"int g = ~0;":           -1,
		"int g = !3;":           0,
		"int g = !0;":           1,
		"int g = 7 / 2;":        3,
		"int g = 7 % 2;":        1,
		"int g = 1 && 0;":       0,
		"int g = 1 || 0;":       1,
		"int g = 3 < 4;":        1,
		"int g = sizeof(int);":  8,
		"int g = sizeof(char);": 1,
		"int g = sizeof(int*);": 8,
		"int g = (char)300;":    44,
		"int g = 0xff & 0x0f;":  0x0f,
		"int g = 1 << 10;":      1024,
		"int g = 5 == 5;":       1,
		"int g = 5 != 5;":       0,
		"int g = 6 >= 7;":       0,
		"int g = -8 >> 1;":      -4,
	}
	for src, want := range cases {
		p := mustParse(t, src)
		v, err := EvalConst(p.Globals[0].Init)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if v != want {
			t.Errorf("%s = %d, want %d", src, v, want)
		}
	}
	// Division by zero in a constant must be rejected.
	p := mustParse(t, "int g = 1 / 0;")
	if _, err := Analyze(p); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("const div by zero: %v", err)
	}
}

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		t    *Type
		want int64
	}{
		{TypeInt, 8},
		{TypeChar, 1},
		{PtrTo(TypeChar), 8},
		{ArrayOf(TypeChar, 10), 10},
		{ArrayOf(TypeInt, 10), 80},
		{ArrayOf(PtrTo(TypeInt), 3), 24},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.want {
			t.Errorf("sizeof(%s) = %d, want %d", c.t, got, c.want)
		}
	}
}
