package minc

import (
	"fmt"
	"strings"
)

// Error is a front-end diagnostic with a source position.
type Error struct {
	File string
	Line int32
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// Lexer turns MinC source into tokens. Comments (// and /* */) are skipped.
type Lexer struct {
	file string
	src  string
	pos  int
	line int32
}

// NewLexer creates a lexer over src; file names diagnostics.
func NewLexer(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1}
}

func (lx *Lexer) errf(format string, args ...interface{}) error {
	return &Error{File: lx.file, Line: lx.line, Msg: fmt.Sprintf(format, args...)}
}

func (lx *Lexer) peek() byte {
	if lx.pos < len(lx.src) {
		return lx.src[lx.pos]
	}
	return 0
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 < len(lx.src) {
		return lx.src[lx.pos+1]
	}
	return 0
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
	}
	return c
}

func (lx *Lexer) skipSpace() error {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			lx.advance()
			lx.advance()
			for {
				if lx.pos >= len(lx.src) {
					return lx.errf("unterminated block comment")
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdent(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	line := lx.line
	if lx.pos >= len(lx.src) {
		return Token{Kind: EOF, Line: line}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdent(lx.peek()) {
			lx.advance()
		}
		word := lx.src[start:lx.pos]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Text: word, Line: line}, nil
		}
		return Token{Kind: IDENT, Text: word, Line: line}, nil
	case isDigit(c):
		return lx.lexNumber(line)
	case c == '\'':
		return lx.lexCharLit(line)
	case c == '"':
		return lx.lexString(line)
	}
	return lx.lexOperator(line)
}

func (lx *Lexer) lexNumber(line int32) (Token, error) {
	start := lx.pos
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		hexStart := lx.pos
		var v uint64
		for lx.pos < len(lx.src) {
			c := lx.peek()
			var d uint64
			switch {
			case isDigit(c):
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			case c >= 'A' && c <= 'F':
				d = uint64(c-'A') + 10
			default:
				goto done
			}
			v = v*16 + d
			lx.advance()
		}
	done:
		if lx.pos == hexStart {
			return Token{}, lx.errf("malformed hex literal")
		}
		return Token{Kind: INT, Val: int64(v), Line: line}, nil
	}
	var v uint64
	for lx.pos < len(lx.src) && isDigit(lx.peek()) {
		v = v*10 + uint64(lx.advance()-'0')
	}
	if lx.pos < len(lx.src) && isIdentStart(lx.peek()) {
		return Token{}, lx.errf("malformed number %q", lx.src[start:lx.pos+1])
	}
	return Token{Kind: INT, Val: int64(v), Line: line}, nil
}

func (lx *Lexer) escape() (byte, error) {
	if lx.pos >= len(lx.src) {
		return 0, lx.errf("unterminated escape")
	}
	c := lx.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	case 'x':
		var v byte
		n := 0
		for n < 2 && lx.pos < len(lx.src) {
			c := lx.peek()
			switch {
			case isDigit(c):
				v = v*16 + (c - '0')
			case c >= 'a' && c <= 'f':
				v = v*16 + (c - 'a') + 10
			case c >= 'A' && c <= 'F':
				v = v*16 + (c - 'A') + 10
			default:
				if n == 0 {
					return 0, lx.errf("malformed \\x escape")
				}
				return v, nil
			}
			lx.advance()
			n++
		}
		return v, nil
	}
	return 0, lx.errf("unknown escape \\%c", c)
}

func (lx *Lexer) lexCharLit(line int32) (Token, error) {
	lx.advance() // opening '
	if lx.pos >= len(lx.src) {
		return Token{}, lx.errf("unterminated char literal")
	}
	var v byte
	c := lx.advance()
	if c == '\\' {
		e, err := lx.escape()
		if err != nil {
			return Token{}, err
		}
		v = e
	} else {
		v = c
	}
	if lx.pos >= len(lx.src) || lx.advance() != '\'' {
		return Token{}, lx.errf("unterminated char literal")
	}
	return Token{Kind: INT, Val: int64(v), Line: line}, nil
}

func (lx *Lexer) lexString(line int32) (Token, error) {
	lx.advance() // opening "
	var sb strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return Token{}, lx.errf("unterminated string literal")
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\n' {
			return Token{}, lx.errf("newline in string literal")
		}
		if c == '\\' {
			e, err := lx.escape()
			if err != nil {
				return Token{}, err
			}
			sb.WriteByte(e)
			continue
		}
		sb.WriteByte(c)
	}
	return Token{Kind: STRING, Text: sb.String(), Line: line}, nil
}

// two-character operators checked before one-character ones.
func (lx *Lexer) lexOperator(line int32) (Token, error) {
	three := ""
	if lx.pos+3 <= len(lx.src) {
		three = lx.src[lx.pos : lx.pos+3]
	}
	switch three {
	case "<<=":
		lx.pos += 3
		return Token{Kind: ShlEq, Line: line}, nil
	case ">>=":
		lx.pos += 3
		return Token{Kind: ShrEq, Line: line}, nil
	}
	two := ""
	if lx.pos+2 <= len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	twoMap := map[string]Kind{
		"->": Arrow, "+=": PlusEq, "-=": MinusEq, "*=": StarEq,
		"/=": SlashEq, "%=": PercentEq, "&=": AmpEq, "|=": PipeEq,
		"^=": CaretEq, "<<": Shl, ">>": Shr, "==": EqEq, "!=": NotEq,
		"<=": LtEq, ">=": GtEq, "&&": AndAnd, "||": OrOr,
		"++": PlusPlus, "--": MinusMinus,
	}
	if k, ok := twoMap[two]; ok {
		lx.pos += 2
		return Token{Kind: k, Line: line}, nil
	}
	oneMap := map[byte]Kind{
		'(': LParen, ')': RParen, '{': LBrace, '}': RBrace,
		'[': LBracket, ']': RBracket, ';': Semi, ',': Comma, '.': Dot,
		'=': Assign, '+': Plus, '-': Minus, '*': Star, '/': Slash,
		'%': Percent, '&': Amp, '|': Pipe, '^': Caret, '~': Tilde,
		'!': Bang, '<': Lt, '>': Gt, '?': Question, ':': Colon,
	}
	c := lx.peek()
	if k, ok := oneMap[c]; ok {
		lx.advance()
		return Token{Kind: k, Line: line}, nil
	}
	return Token{}, lx.errf("unexpected character %q", string(c))
}

// LexAll tokenizes the whole input (testing convenience).
func LexAll(file, src string) ([]Token, error) {
	lx := NewLexer(file, src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
