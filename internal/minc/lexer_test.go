package minc

import "testing"

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := LexAll("t.c", "int main(void) { return 42; }")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwInt, IDENT, LParen, KwVoid, RParen, LBrace, KwReturn, INT, Semi, RBrace, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
	if toks[7].Val != 42 {
		t.Fatalf("int literal = %d", toks[7].Val)
	}
}

func TestLexOperators(t *testing.T) {
	src := "+ - * / % << >> <<= >>= == != <= >= && || ++ -- -> . ? : += -= *= /= %= &= |= ^= & | ^ ~ !"
	toks, err := LexAll("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{Plus, Minus, Star, Slash, Percent, Shl, Shr, ShlEq, ShrEq,
		EqEq, NotEq, LtEq, GtEq, AndAnd, OrOr, PlusPlus, MinusMinus, Arrow,
		Dot, Question, Colon, PlusEq, MinusEq, StarEq, SlashEq, PercentEq,
		AmpEq, PipeEq, CaretEq, Amp, Pipe, Caret, Tilde, Bang, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("count %d want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := LexAll("t.c", "0 123 0xff 0X10 'a' '\\n' '\\x41' '\\0'")
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 123, 255, 16, 'a', '\n', 0x41, 0}
	for i, w := range want {
		if toks[i].Kind != INT || toks[i].Val != w {
			t.Fatalf("literal %d = %v, want %d", i, toks[i], w)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := LexAll("t.c", `"hello\n" "a\"b" "\x41BC" ""`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"hello\n", `a"b`, "ABC", ""}
	for i, w := range want {
		if toks[i].Kind != STRING || toks[i].Text != w {
			t.Fatalf("string %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment with int keywords
int /* block
spanning lines */ x;
`
	toks, err := LexAll("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwInt, IDENT, Semi, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s (%v)", i, got[i], want[i], got)
		}
	}
	// Line numbers must account for the comment lines.
	if toks[0].Line != 3 {
		t.Fatalf("int on line %d, want 3", toks[0].Line)
	}
	if toks[1].Line != 4 {
		t.Fatalf("x on line %d, want 4", toks[1].Line)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"@",
		`"unterminated`,
		"'a",
		"/* unterminated",
		"123abc",
		`"bad \q escape"`,
	}
	for _, src := range cases {
		if _, err := LexAll("t.c", src); err == nil {
			t.Errorf("LexAll(%q) succeeded, want error", src)
		}
	}
}

func TestErrorMessageHasPosition(t *testing.T) {
	_, err := LexAll("file.c", "\n\n@")
	if err == nil {
		t.Fatal("no error")
	}
	if got := err.Error(); got != `file.c:3: unexpected character "@"` {
		t.Fatalf("error = %q", got)
	}
}
