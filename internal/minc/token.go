// Package minc implements the front end for MinC, the C subset the
// benchmark targets are written in. It stands in for the C front end of
// clang in the paper's toolchain: MinC source is parsed and lowered to the
// IR that the ClosureX passes instrument.
//
// MinC supports: int (64-bit), char (unsigned 8-bit), pointers, fixed-size
// arrays, structs, global variables with initializers (including string
// literals), functions, the usual C statement and expression forms
// (if/else, while, do-while, for, switch with fallthrough, break/continue,
// return, assignment operators, short-circuit && and ||, the ?: ternary,
// pre/post ++/--, sizeof, casts), and calls into the runtime's libc
// surface (malloc, fopen, memcpy, exit, ...).
package minc

import "fmt"

// Kind enumerates token kinds.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT    // integer literal (decimal, hex, char)
	STRING // string literal (value has escapes resolved)

	// Keywords.
	KwInt
	KwChar
	KwVoid
	KwStruct
	KwConst
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwSizeof
	KwSwitch
	KwCase
	KwDefault
	KwDo

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semi
	Comma
	Dot
	Arrow // ->

	Assign     // =
	PlusEq     // +=
	MinusEq    // -=
	StarEq     // *=
	SlashEq    // /=
	PercentEq  // %=
	AmpEq      // &=
	PipeEq     // |=
	CaretEq    // ^=
	ShlEq      // <<=
	ShrEq      // >>=
	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
	Percent    // %
	Amp        // &
	Pipe       // |
	Caret      // ^
	Tilde      // ~
	Bang       // !
	Shl        // <<
	Shr        // >>
	EqEq       // ==
	NotEq      // !=
	Lt         // <
	Gt         // >
	LtEq       // <=
	GtEq       // >=
	AndAnd     // &&
	OrOr       // ||
	PlusPlus   // ++
	MinusMinus // --
	Question   // ?
	Colon      // :
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INT: "integer", STRING: "string",
	KwInt: "int", KwChar: "char", KwVoid: "void", KwStruct: "struct",
	KwConst: "const", KwIf: "if", KwElse: "else", KwWhile: "while",
	KwFor: "for", KwReturn: "return", KwBreak: "break",
	KwContinue: "continue", KwSizeof: "sizeof", KwSwitch: "switch",
	KwCase: "case", KwDefault: "default", KwDo: "do",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",", Dot: ".",
	Arrow: "->", Assign: "=", PlusEq: "+=", MinusEq: "-=", StarEq: "*=",
	SlashEq: "/=", PercentEq: "%=", AmpEq: "&=", PipeEq: "|=",
	CaretEq: "^=", ShlEq: "<<=", ShrEq: ">>=", Plus: "+", Minus: "-",
	Star: "*", Slash: "/", Percent: "%", Amp: "&", Pipe: "|", Caret: "^",
	Tilde: "~", Bang: "!", Shl: "<<", Shr: ">>", EqEq: "==", NotEq: "!=",
	Lt: "<", Gt: ">", LtEq: "<=", GtEq: ">=", AndAnd: "&&", OrOr: "||",
	PlusPlus: "++", MinusMinus: "--", Question: "?", Colon: ":",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "char": KwChar, "void": KwVoid, "struct": KwStruct,
	"const": KwConst, "if": KwIf, "else": KwElse, "while": KwWhile,
	"for": KwFor, "return": KwReturn, "break": KwBreak,
	"continue": KwContinue, "sizeof": KwSizeof, "switch": KwSwitch,
	"case": KwCase, "default": KwDefault, "do": KwDo,
}

// Token is one lexeme with its source line.
type Token struct {
	Kind Kind
	Text string // identifier name or resolved string value
	Val  int64  // integer value for INT
	Line int32
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return t.Text
	case INT:
		return fmt.Sprintf("%d", t.Val)
	case STRING:
		return fmt.Sprintf("%q", t.Text)
	}
	return t.Kind.String()
}
