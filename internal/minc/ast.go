package minc

// ---- Types ----

// TKind enumerates MinC type kinds.
type TKind uint8

// Type kinds.
const (
	TVoid TKind = iota
	TInt        // 64-bit signed
	TChar       // 8-bit unsigned
	TPtr
	TArray
	TStruct
)

// Type is a MinC type. Types are interned per parse where convenient but
// compared structurally.
type Type struct {
	Kind     TKind
	Elem     *Type // TPtr, TArray
	ArrayLen int64 // TArray
	Struct   *StructDef
}

// Prebuilt scalar types.
var (
	TypeVoid = &Type{Kind: TVoid}
	TypeInt  = &Type{Kind: TInt}
	TypeChar = &Type{Kind: TChar}
)

// PtrTo returns a pointer type to t.
func PtrTo(t *Type) *Type { return &Type{Kind: TPtr, Elem: t} }

// ArrayOf returns an array type of n elements of t.
func ArrayOf(t *Type, n int64) *Type {
	return &Type{Kind: TArray, Elem: t, ArrayLen: n}
}

// Size returns the byte size of a value of this type.
func (t *Type) Size() int64 {
	switch t.Kind {
	case TVoid:
		return 0
	case TChar:
		return 1
	case TInt, TPtr:
		return 8
	case TArray:
		return t.Elem.Size() * t.ArrayLen
	case TStruct:
		return t.Struct.Size
	}
	return 0
}

// IsScalar reports whether values of t fit in one register.
func (t *Type) IsScalar() bool {
	switch t.Kind {
	case TInt, TChar, TPtr:
		return true
	}
	return false
}

// AccessSize returns the load/store width for a scalar of this type.
func (t *Type) AccessSize() int {
	if t.Kind == TChar {
		return 1
	}
	return 8
}

// String renders the type C-style.
func (t *Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TChar:
		return "char"
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		return t.Elem.String() + "[]"
	case TStruct:
		return "struct " + t.Struct.Name
	}
	return "?"
}

// StructDef is a struct declaration with laid-out fields.
type StructDef struct {
	Name   string
	Fields []FieldDef
	Size   int64
}

// FieldDef is one struct member.
type FieldDef struct {
	Name   string
	Type   *Type
	Offset int64
}

// Field returns the named member, or nil.
func (s *StructDef) Field(name string) *FieldDef {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// ---- Declarations ----

// Program is a parsed translation unit.
type Program struct {
	File    string
	Structs []*StructDef
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl is a module-level variable.
type GlobalDecl struct {
	Name  string
	Type  *Type
	Const bool
	// Init is the initializer expression (scalar), string literal (char
	// arrays) or brace list (arrays); nil means zero-initialized.
	Init Expr
	Line int32
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []Param
	Body   *BlockStmt
	Line   int32
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
}

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// BlockStmt is { ... }.
type BlockStmt struct {
	Stmts []Stmt
	Line  int32
}

// VarDeclStmt declares a local variable.
type VarDeclStmt struct {
	Name string
	Type *Type
	Init Expr // nil means uninitialized (reads as zero in the VM)
	Line int32
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	X    Expr
	Line int32
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Line int32
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Line int32
}

// ForStmt is a for loop; any clause may be nil.
type ForStmt struct {
	Init Stmt // VarDeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
	Line int32
}

// DoWhileStmt is do { body } while (cond);
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
	Line int32
}

// SwitchCase is one arm of a switch: Vals lists the constant case labels
// stacked on this arm; Default marks a stacked default label. C
// fallthrough semantics apply.
type SwitchCase struct {
	Vals    []Expr
	Default bool
	Stmts   []Stmt
	Line    int32
}

// SwitchStmt is a C switch over an integer expression.
type SwitchStmt struct {
	Cond  Expr
	Cases []SwitchCase
	Line  int32
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	X    Expr // nil for bare return
	Line int32
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int32 }

// ContinueStmt advances the innermost loop.
type ContinueStmt struct{ Line int32 }

// EmptyStmt is a bare semicolon.
type EmptyStmt struct{ Line int32 }

func (*BlockStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*SwitchStmt) stmtNode()   {}
func (*VarDeclStmt) stmtNode()  {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*EmptyStmt) stmtNode()    {}

// ---- Expressions ----

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	Pos() int32
}

// IntLit is an integer (or char) literal.
type IntLit struct {
	Val  int64
	Line int32
}

// StrLit is a string literal (becomes a rodata global).
type StrLit struct {
	Val  string
	Line int32
}

// Ident references a variable or function name.
type Ident struct {
	Name string
	Line int32
}

// Unary is -x, !x, ~x, *x, &x.
type Unary struct {
	Op   Kind // Minus, Bang, Tilde, Star, Amp
	X    Expr
	Line int32
}

// Binary is x op y for arithmetic/comparison/bitwise/logical operators.
type Binary struct {
	Op   Kind
	X, Y Expr
	Line int32
}

// Assign is lhs op= rhs (op == Assign for plain =).
type AssignExpr struct {
	Op   Kind // Assign, PlusEq, ...
	LHS  Expr
	RHS  Expr
	Line int32
}

// Cond is c ? t : f.
type Cond struct {
	C, T, F Expr
	Line    int32
}

// IncDec is ++x, --x, x++, x--.
type IncDec struct {
	Op   Kind // PlusPlus or MinusMinus
	X    Expr
	Post bool
	Line int32
}

// Index is base[idx].
type Index struct {
	Base Expr
	Idx  Expr
	Line int32
}

// Member is base.field or base->field.
type Member struct {
	Base  Expr
	Field string
	Arrow bool
	Line  int32
}

// Call is fn(args...). Only direct calls by name are supported.
type Call struct {
	Name string
	Args []Expr
	Line int32
}

// SizeofExpr is sizeof(type).
type SizeofExpr struct {
	T    *Type
	Line int32
}

// CastExpr is (type)x — a no-op on values, but it retypes pointers.
type CastExpr struct {
	T    *Type
	X    Expr
	Line int32
}

func (*IntLit) exprNode()     {}
func (*StrLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*AssignExpr) exprNode() {}
func (*Cond) exprNode()       {}
func (*IncDec) exprNode()     {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*Call) exprNode()       {}
func (*SizeofExpr) exprNode() {}
func (*CastExpr) exprNode()   {}

// Pos implementations.
func (e *IntLit) Pos() int32     { return e.Line }
func (e *StrLit) Pos() int32     { return e.Line }
func (e *Ident) Pos() int32      { return e.Line }
func (e *Unary) Pos() int32      { return e.Line }
func (e *Binary) Pos() int32     { return e.Line }
func (e *AssignExpr) Pos() int32 { return e.Line }
func (e *Cond) Pos() int32       { return e.Line }
func (e *IncDec) Pos() int32     { return e.Line }
func (e *Index) Pos() int32      { return e.Line }
func (e *Member) Pos() int32     { return e.Line }
func (e *Call) Pos() int32       { return e.Line }
func (e *SizeofExpr) Pos() int32 { return e.Line }
func (e *CastExpr) Pos() int32   { return e.Line }

// InitList is a brace-enclosed initializer for arrays: {1, 2, 3}.
type InitList struct {
	Elems []Expr
	Line  int32
}

func (*InitList) exprNode()    {}
func (e *InitList) Pos() int32 { return e.Line }
