package minc

import "fmt"

// Parser is a recursive-descent parser over a pre-lexed token stream.
type Parser struct {
	file    string
	toks    []Token
	pos     int
	structs map[string]*StructDef
}

// Parse parses a MinC translation unit.
func Parse(file, src string) (*Program, error) {
	toks, err := LexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{file: file, toks: toks, structs: make(map[string]*StructDef)}
	return p.parseProgram()
}

func (p *Parser) errf(line int32, format string, args ...interface{}) error {
	return &Error{File: p.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) peekKind(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, p.errf(t.Line, "expected %s, found %s", k, t)
	}
	p.pos++
	return t, nil
}

// isTypeStart reports whether the current token begins a type.
func (p *Parser) isTypeStart() bool {
	switch p.cur().Kind {
	case KwInt, KwChar, KwVoid, KwStruct, KwConst:
		return true
	}
	return false
}

// parseType parses a base type plus pointer stars: "int**", "struct s*".
func (p *Parser) parseType() (*Type, error) {
	t := p.next()
	var base *Type
	switch t.Kind {
	case KwInt:
		base = TypeInt
	case KwChar:
		base = TypeChar
	case KwVoid:
		base = TypeVoid
	case KwStruct:
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		sd, ok := p.structs[name.Text]
		if !ok {
			return nil, p.errf(name.Line, "unknown struct %q", name.Text)
		}
		base = &Type{Kind: TStruct, Struct: sd}
	default:
		return nil, p.errf(t.Line, "expected type, found %s", t)
	}
	for p.accept(Star) {
		base = PtrTo(base)
	}
	return base, nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{File: p.file}
	for !p.peekKind(EOF) {
		switch {
		case p.peekKind(KwStruct) && p.pos+2 < len(p.toks) && p.toks[p.pos+2].Kind == LBrace:
			sd, err := p.parseStructDef()
			if err != nil {
				return nil, err
			}
			prog.Structs = append(prog.Structs, sd)
		default:
			if err := p.parseTopLevelDecl(prog); err != nil {
				return nil, err
			}
		}
	}
	return prog, nil
}

// parseStructDef parses: struct NAME { fields } ;
func (p *Parser) parseStructDef() (*StructDef, error) {
	p.next() // struct
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, dup := p.structs[name.Text]; dup {
		return nil, p.errf(name.Line, "struct %q redefined", name.Text)
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	sd := &StructDef{Name: name.Text}
	// Register before fields so self-referential pointers work.
	p.structs[name.Text] = sd
	var off int64
	for !p.accept(RBrace) {
		ft, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fname, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		for p.accept(LBracket) {
			n, err := p.expect(INT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			ft = ArrayOf(ft, n.Val)
		}
		if ft.Kind == TVoid {
			return nil, p.errf(fname.Line, "field %q has void type", fname.Text)
		}
		if ft.Kind == TStruct && ft.Struct == sd {
			return nil, p.errf(fname.Line, "struct %q contains itself", sd.Name)
		}
		align := int64(8)
		if ft.Kind == TChar || (ft.Kind == TArray && ft.Elem.Kind == TChar) {
			align = 1
		}
		off = (off + align - 1) &^ (align - 1)
		if sd.Field(fname.Text) != nil {
			return nil, p.errf(fname.Line, "duplicate field %q", fname.Text)
		}
		sd.Fields = append(sd.Fields, FieldDef{Name: fname.Text, Type: ft, Offset: off})
		off += ft.Size()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	sd.Size = (off + 7) &^ 7
	if sd.Size == 0 {
		sd.Size = 8
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return sd, nil
}

// parseTopLevelDecl parses a global variable or a function definition.
func (p *Parser) parseTopLevelDecl(prog *Program) error {
	isConst := p.accept(KwConst)
	ty, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	if p.peekKind(LParen) {
		if isConst {
			return p.errf(name.Line, "const functions are not supported")
		}
		fn, err := p.parseFuncRest(ty, name)
		if err != nil {
			return err
		}
		prog.Funcs = append(prog.Funcs, fn)
		return nil
	}
	// Global variable: array suffixes, optional initializer.
	for p.accept(LBracket) {
		n, err := p.expect(INT)
		if err != nil {
			return err
		}
		if _, err := p.expect(RBracket); err != nil {
			return err
		}
		ty = ArrayOf(ty, n.Val)
	}
	if ty.Kind == TVoid {
		return p.errf(name.Line, "global %q has void type", name.Text)
	}
	g := &GlobalDecl{Name: name.Text, Type: ty, Const: isConst, Line: name.Line}
	if p.accept(Assign) {
		init, err := p.parseInitializer()
		if err != nil {
			return err
		}
		g.Init = init
	}
	if _, err := p.expect(Semi); err != nil {
		return err
	}
	prog.Globals = append(prog.Globals, g)
	return nil
}

// parseInitializer parses a global initializer: expression, string, or
// brace list.
func (p *Parser) parseInitializer() (Expr, error) {
	if p.peekKind(LBrace) {
		line := p.next().Line
		lst := &InitList{Line: line}
		for !p.accept(RBrace) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			lst.Elems = append(lst.Elems, e)
			if !p.accept(Comma) {
				if _, err := p.expect(RBrace); err != nil {
					return nil, err
				}
				break
			}
		}
		return lst, nil
	}
	return p.parseExpr()
}

// parseFuncRest parses parameters and body after "type name".
func (p *Parser) parseFuncRest(ret *Type, name Token) (*FuncDecl, error) {
	p.next() // (
	fn := &FuncDecl{Name: name.Text, Ret: ret, Line: name.Line}
	if p.accept(KwVoid) && p.peekKind(RParen) {
		// (void) parameter list
	} else if !p.peekKind(RParen) {
		for {
			pt, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pname, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if pt.Kind == TVoid || pt.Kind == TStruct || pt.Kind == TArray {
				return nil, p.errf(pname.Line,
					"parameter %q must be scalar (int, char or pointer)", pname.Text)
			}
			fn.Params = append(fn.Params, Param{Name: pname.Text, Type: pt})
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Line: lb.Line}
	for !p.accept(RBrace) {
		if p.peekKind(EOF) {
			return nil, p.errf(lb.Line, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case LBrace:
		return p.parseBlock()
	case Semi:
		p.next()
		return &EmptyStmt{Line: t.Line}, nil
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwDo:
		return p.parseDoWhile()
	case KwFor:
		return p.parseFor()
	case KwSwitch:
		return p.parseSwitch()
	case KwReturn:
		p.next()
		rs := &ReturnStmt{Line: t.Line}
		if !p.peekKind(Semi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.X = e
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return rs, nil
	case KwBreak:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.Line}, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.Line}, nil
	}
	if p.isTypeStart() {
		return p.parseVarDecl()
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &ExprStmt{X: e, Line: t.Line}, nil
}

func (p *Parser) parseVarDecl() (Stmt, error) {
	if p.peekKind(KwConst) {
		return nil, p.errf(p.cur().Line, "const locals are not supported")
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	for p.accept(LBracket) {
		n, err := p.expect(INT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		ty = ArrayOf(ty, n.Val)
	}
	if ty.Kind == TVoid {
		return nil, p.errf(name.Line, "variable %q has void type", name.Text)
	}
	vd := &VarDeclStmt{Name: name.Text, Type: ty, Line: name.Line}
	if p.accept(Assign) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		vd.Init = e
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return vd, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Line: t.Line}
	if p.accept(KwElse) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: t.Line}, nil
}

// parseDoWhile parses: do stmt while ( expr ) ;
func (p *Parser) parseDoWhile() (Stmt, error) {
	t := p.next() // do
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &DoWhileStmt{Body: body, Cond: cond, Line: t.Line}, nil
}

// parseSwitch parses a C switch with stacked case labels, fallthrough and
// an optional default arm.
func (p *Parser) parseSwitch() (Stmt, error) {
	t := p.next() // switch
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	st := &SwitchStmt{Cond: cond, Line: t.Line}
	sawDefault := false
	for !p.accept(RBrace) {
		if p.peekKind(EOF) {
			return nil, p.errf(t.Line, "unterminated switch")
		}
		if !p.peekKind(KwCase) && !p.peekKind(KwDefault) {
			return nil, p.errf(p.cur().Line, "expected case or default, found %s", p.cur())
		}
		var arm SwitchCase
		arm.Line = p.cur().Line
		// One or more stacked labels.
		for p.peekKind(KwCase) || p.peekKind(KwDefault) {
			lt := p.next()
			if lt.Kind == KwCase {
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := EvalConst(v); err != nil {
					return nil, p.errf(lt.Line, "case label is not constant: %v", err)
				}
				arm.Vals = append(arm.Vals, v)
			} else {
				if sawDefault {
					return nil, p.errf(lt.Line, "duplicate default label")
				}
				sawDefault = true
				arm.Default = true
			}
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
		}
		// Statements until the next label or the closing brace.
		for !p.peekKind(KwCase) && !p.peekKind(KwDefault) && !p.peekKind(RBrace) {
			if p.peekKind(EOF) {
				return nil, p.errf(t.Line, "unterminated switch")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			arm.Stmts = append(arm.Stmts, s)
		}
		st.Cases = append(st.Cases, arm)
	}
	return st, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Line: t.Line}
	switch {
	case p.accept(Semi):
	case p.isTypeStart():
		init, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		st.Init = init
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		st.Init = &ExprStmt{X: e, Line: e.Pos()}
	}
	if !p.peekKind(Semi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.peekKind(RParen) {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// ---- Expressions (precedence climbing) ----

func (p *Parser) parseExpr() (Expr, error) { return p.parseAssign() }

func isAssignOp(k Kind) bool {
	switch k {
	case Assign, PlusEq, MinusEq, StarEq, SlashEq, PercentEq,
		AmpEq, PipeEq, CaretEq, ShlEq, ShrEq:
		return true
	}
	return false
}

func (p *Parser) parseAssign() (Expr, error) {
	lhs, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if isAssignOp(p.cur().Kind) {
		op := p.next()
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Op: op.Kind, LHS: lhs, RHS: rhs, Line: op.Line}, nil
	}
	return lhs, nil
}

func (p *Parser) parseCond() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.peekKind(Question) {
		q := p.next()
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		f, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		return &Cond{C: c, T: t, F: f, Line: q.Line}, nil
	}
	return c, nil
}

// binary operator precedence, loosest first.
var precLevels = [][]Kind{
	{OrOr},
	{AndAnd},
	{Pipe},
	{Caret},
	{Amp},
	{EqEq, NotEq},
	{Lt, Gt, LtEq, GtEq},
	{Shl, Shr},
	{Plus, Minus},
	{Star, Slash, Percent},
}

func (p *Parser) parseBinary(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		match := false
		for _, op := range precLevels[level] {
			if k == op {
				match = true
				break
			}
		}
		if !match {
			return lhs, nil
		}
		op := p.next()
		rhs, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op.Kind, X: lhs, Y: rhs, Line: op.Line}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case Minus, Bang, Tilde, Star, Amp:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Kind, X: x, Line: t.Line}, nil
	case PlusPlus, MinusMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDec{Op: t.Kind, X: x, Post: false, Line: t.Line}, nil
	case LParen:
		// Cast: "(" type ")" unary — distinguished from parenthesized
		// expression by a type-start token after the paren.
		if p.toks[p.pos+1].Kind == KwInt || p.toks[p.pos+1].Kind == KwChar ||
			p.toks[p.pos+1].Kind == KwVoid || p.toks[p.pos+1].Kind == KwStruct {
			p.next() // (
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{T: ty, X: x, Line: t.Line}, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Kind {
		case LBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			x = &Index{Base: x, Idx: idx, Line: t.Line}
		case Dot, Arrow:
			p.next()
			f, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			x = &Member{Base: x, Field: f.Text, Arrow: t.Kind == Arrow, Line: t.Line}
		case PlusPlus, MinusMinus:
			p.next()
			x = &IncDec{Op: t.Kind, X: x, Post: true, Line: t.Line}
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case INT:
		return &IntLit{Val: t.Val, Line: t.Line}, nil
	case STRING:
		return &StrLit{Val: t.Text, Line: t.Line}, nil
	case KwSizeof:
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return &SizeofExpr{T: ty, Line: t.Line}, nil
	case IDENT:
		if p.peekKind(LParen) {
			p.next()
			call := &Call{Name: t.Text, Line: t.Line}
			if !p.peekKind(RParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(Comma) {
						break
					}
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: t.Text, Line: t.Line}, nil
	case LParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf(t.Line, "unexpected token %s in expression", t)
}
