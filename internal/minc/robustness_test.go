package minc

import (
	"testing"
	"testing/quick"
)

// The front end must never panic or hang, no matter the input: it either
// parses or returns a positioned error. This is the compiler's own
// fuzz-robustness contract (we are, after all, a fuzzing paper).

// mangle corrupts a valid program deterministically from a seed.
func mangle(src []byte, seed uint64) []byte {
	out := append([]byte(nil), src...)
	s := seed
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	ops := int(next()%8) + 1
	for i := 0; i < ops && len(out) > 0; i++ {
		switch next() % 4 {
		case 0: // flip a byte
			out[next()%uint64(len(out))] ^= byte(next())
		case 1: // delete a span
			from := int(next() % uint64(len(out)))
			n := int(next()%16) + 1
			if from+n > len(out) {
				n = len(out) - from
			}
			out = append(out[:from], out[from+n:]...)
		case 2: // duplicate a span
			from := int(next() % uint64(len(out)))
			n := int(next()%16) + 1
			if from+n > len(out) {
				n = len(out) - from
			}
			blk := append([]byte(nil), out[from:from+n]...)
			out = append(out[:from], append(blk, out[from:]...)...)
		case 3: // insert punctuation that stresses the parser
			punct := []byte("{}()[];,*&<>=!?:#\"'\\/")
			at := int(next() % uint64(len(out)+1))
			c := punct[next()%uint64(len(punct))]
			out = append(out[:at], append([]byte{c}, out[at:]...)...)
		}
	}
	return out
}

const robustnessSeedProgram = `
struct pair { int a; char b[4]; };
int table[8] = {1, 2, 3};
const char *msg = "hello";
int helper(int x, char *p) {
	switch (x & 3) {
	case 0: return p[0];
	case 1:
	case 2: x += 2; break;
	default: x = -x;
	}
	do { x--; } while (x > 0 && p[x & 3]);
	for (int i = 0; i < 4; i++) x += table[i] * i;
	return x > 0 ? x : -x;
}
int main(void) {
	struct pair pr;
	pr.a = sizeof(struct pair);
	char *q = (char*)malloc(8);
	if (!q) exit(1);
	q[0] = 'x';
	int r = helper(pr.a, q);
	free(q);
	return r;
}
`

func TestParserNeverPanicsOnMangledInput(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("front end panicked: %v", r)
		}
	}()
	base := []byte(robustnessSeedProgram)
	for seed := uint64(1); seed <= 3000; seed++ {
		src := mangle(base, seed)
		prog, err := Parse("m.c", string(src))
		if err != nil {
			continue
		}
		// Whatever parses must also analyze without panicking.
		_, _ = Analyze(prog)
	}
}

// Property: arbitrary byte soup is handled gracefully too (not just
// near-valid programs).
func TestParserNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		if len(data) > 2048 {
			data = data[:2048]
		}
		prog, err := Parse("r.c", string(data))
		if err == nil {
			_, _ = Analyze(prog)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
