package minc

import (
	"strings"
	"testing"
)

// Edge-case coverage for the front end: inputs that have historically
// broken hand-written parsers.

func TestParseEmptyAndWhitespaceOnly(t *testing.T) {
	for _, src := range []string{"", "   \n\t  ", "// only a comment\n", "/* block */"} {
		p, err := Parse("t.c", src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if len(p.Funcs)+len(p.Globals)+len(p.Structs) != 0 {
			t.Fatalf("%q: produced declarations", src)
		}
	}
}

func TestParseEOFInEveryConstruct(t *testing.T) {
	// Truncated programs must error, never panic or loop.
	prefixes := []string{
		"int",
		"int x",
		"int x[",
		"int x[3",
		"int f(",
		"int f(int",
		"int f(int a",
		"int f(int a)",
		"int f(void) {",
		"int f(void) { if",
		"int f(void) { if (",
		"int f(void) { if (1",
		"int f(void) { if (1)",
		"int f(void) { while (1)",
		"int f(void) { for (",
		"int f(void) { for (;;",
		"int f(void) { return",
		"int f(void) { return 1 +",
		"int f(void) { int a =",
		"int f(void) { g(",
		"int f(void) { a[",
		"int f(void) { a ? 1",
		"int f(void) { a ? 1 :",
		"struct",
		"struct s",
		"struct s {",
		"struct s { int",
		"struct s { int a;",
		"struct s { int a; }",
		"const",
		"const int g =",
	}
	for _, src := range prefixes {
		if _, err := Parse("t.c", src); err == nil {
			t.Errorf("%q: parsed successfully", src)
		}
	}
}

func TestDeeplyNestedExpressions(t *testing.T) {
	// 200 levels of parens must not blow the parser.
	src := "int g = " + strings.Repeat("(", 200) + "1" + strings.Repeat(")", 200) + ";"
	p, err := Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := EvalConst(p.Globals[0].Init); err != nil || v != 1 {
		t.Fatalf("deep parens: %d, %v", v, err)
	}
}

func TestDeeplyNestedBlocks(t *testing.T) {
	src := "int f(void) { " + strings.Repeat("{", 100) + "int x = 1;" +
		strings.Repeat("}", 100) + " return 0; }"
	if _, err := Parse("t.c", src); err != nil {
		t.Fatal(err)
	}
}

func TestOperatorChains(t *testing.T) {
	p := mustParse(t, "int g = 1 + 2 - 3 + 4 - 5 + 6;")
	v, _ := EvalConst(p.Globals[0].Init)
	if v != 5 {
		t.Fatalf("chain = %d", v)
	}
	p = mustParse(t, "int g = 100 / 5 / 2;") // left assoc: 10
	v, _ = EvalConst(p.Globals[0].Init)
	if v != 10 {
		t.Fatalf("div chain = %d", v)
	}
}

func TestCommentsEverywhere(t *testing.T) {
	src := `
int /*a*/ g /*b*/ = /*c*/ 4 /*d*/ ; // trailing
/* leading */ int f(/*p*/void/*q*/) { return /*r*/ g; }
`
	p := mustParse(t, src)
	if len(p.Globals) != 1 || len(p.Funcs) != 1 {
		t.Fatal("comment interleaving broke parsing")
	}
}

func TestHexAndCharLiteralEdges(t *testing.T) {
	cases := map[string]int64{
		"int g = 0x0;":        0,
		"int g = 0xFFFFFFFF;": 0xFFFFFFFF,
		"int g = 0xdeadBEEF;": 0xdeadbeef,
		"int g = '\\\\';":     '\\',
		"int g = '\\'';":      '\'',
		"int g = ' ';":        ' ',
		"int g = '\\xff';":    255,
		"int g = '\\t';":      '\t',
		"int g = '\\r';":      '\r',
	}
	for src, want := range cases {
		p := mustParse(t, src)
		v, err := EvalConst(p.Globals[0].Init)
		if err != nil || v != want {
			t.Errorf("%s = %d (%v), want %d", src, v, err, want)
		}
	}
}

func TestStringEscapeEdges(t *testing.T) {
	p := mustParse(t, `char g[16] = "a\x41\n\t\0";`)
	init := p.Globals[0].Init.(*StrLit)
	if init.Val != "aA\n\t\x00" {
		t.Fatalf("escapes = %q", init.Val)
	}
}

func TestUnaryStacking(t *testing.T) {
	cases := map[string]int64{
		"int g = --5;":  5, // -(-5); MinC lexes -- as one token only between operands... see below
		"int g = - -5;": 5,
		"int g = ~~7;":  7,
		"int g = !!9;":  1,
		"int g = -~0;":  1,
		"int g = !-0;":  1,
	}
	for src, want := range cases {
		p, err := Parse("t.c", src)
		if err != nil {
			// "--5" lexes as pre-decrement of a literal, which is a
			// semantic error surfaced at lowering; accept a front-end
			// error for that one case.
			if strings.Contains(src, "--5") {
				continue
			}
			t.Errorf("%s: %v", src, err)
			continue
		}
		v, err := EvalConst(p.Globals[0].Init)
		if err != nil {
			if strings.Contains(src, "--5") {
				continue // pre-decrement of a constant is not a constant
			}
			t.Errorf("%s: %v", src, err)
			continue
		}
		if v != want {
			t.Errorf("%s = %d, want %d", src, v, want)
		}
	}
}

func TestIdentifierEdges(t *testing.T) {
	p := mustParse(t, "int _x; int x_; int _; int x123; int X_Y_Z_0;")
	if len(p.Globals) != 5 {
		t.Fatalf("globals = %d", len(p.Globals))
	}
	// Keywords are not identifiers.
	if _, err := Parse("t.c", "int while;"); err == nil {
		t.Fatal("keyword as identifier accepted")
	}
}

func TestStructLayoutCharPacking(t *testing.T) {
	p := mustParse(t, `
struct packed {
	char a;
	char b;
	char c;
	int  d;
};
struct packed g;
`)
	sd := p.Structs[0]
	// chars pack byte-by-byte; the int realigns to 8.
	offs := []int64{0, 1, 2, 8}
	for i, f := range sd.Fields {
		if f.Offset != offs[i] {
			t.Fatalf("field %s at %d, want %d", f.Name, f.Offset, offs[i])
		}
	}
	if sd.Size != 16 {
		t.Fatalf("size = %d, want 16", sd.Size)
	}
}

func TestEmptyStructHasNonzeroSize(t *testing.T) {
	p := mustParse(t, "struct e { }; struct e g;")
	if p.Structs[0].Size <= 0 {
		t.Fatal("empty struct has zero size")
	}
}

func TestPointerToStructChains(t *testing.T) {
	mustParse(t, `
struct node { int v; struct node *next; };
int walk(struct node *n) {
	int sum = 0;
	while (n) {
		sum += n->v;
		n = n->next;
	}
	return sum;
}
`)
}

func TestForScopeIsolation(t *testing.T) {
	// The loop variable's scope ends with the loop; redeclaration after is
	// legal.
	mustParse(t, `
int f(void) {
	for (int i = 0; i < 3; i++) { }
	for (int i = 9; i > 0; i--) { }
	int i = 5;
	return i;
}
`)
}

func TestLexAllTokenPositions(t *testing.T) {
	toks, err := LexAll("t.c", "int\nx\n=\n1\n;")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int32{1, 2, 3, 4, 5} {
		if toks[i].Line != want {
			t.Fatalf("token %d line %d, want %d", i, toks[i].Line, want)
		}
	}
}
