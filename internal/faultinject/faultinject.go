// Package faultinject provides a deterministic, seeded fault-injection
// layer for the resilience machinery. Production fuzzing campaigns degrade
// in ways that are hard to reproduce on demand — allocator exhaustion, FD
// leaks hitting RLIMIT_NOFILE, a restore path that silently stops working —
// so the subsystems that must *tolerate* those failures (the harness restore
// watchdog, the execmgr rebuild/fallback ladder) register injection sites,
// and tests arm them with deterministic or seeded-probabilistic rules to
// prove each degradation edge actually fires.
//
// An Injector is safe to leave nil: every hook site calls
// inj.Should(site) on a possibly-nil receiver and gets false, so the
// production fast path is a single nil check.
package faultinject

import (
	"fmt"
	"sort"
	"sync"
)

// Site names one injection point. Sites are registered implicitly: arming a
// rule for a site and probing it are both keyed by these constants.
type Site string

// Injection sites wired into the runtime.
const (
	// HeapAlloc fails mem.Heap allocations with ErrHeapOOM.
	HeapAlloc Site = "mem.alloc"
	// VFSOpen fails vfs.FS.Open with ErrFDExhausted (the descriptor-limit
	// pathology of §4.2.2).
	VFSOpen Site = "vfs.open"
	// VFSClose fails vfs.FS.Close, leaving the descriptor in the table.
	VFSClose Site = "vfs.close"
	// RestoreGlobals skips the harness's closure_global_section copy-back.
	RestoreGlobals Site = "harness.restore-globals"
	// RestoreHeap skips the harness's leaked-chunk sweep.
	RestoreHeap Site = "harness.restore-heap"
	// RestoreFiles skips the harness's FD close/rewind step.
	RestoreFiles Site = "harness.restore-files"
	// ShardKill kills a parallel-campaign shard mid-exec (the shard's
	// supervisor catches the death and climbs the restart ladder).
	ShardKill Site = "fuzz.shard-kill"
	// ShardRestore corrupts a shard's restore path: the shard faults with a
	// restore-corruption verdict, which the supervisor answers with a
	// mechanism rebuild before escalating to shard replacement.
	ShardRestore Site = "fuzz.shard-restore"
	// CorpusDelay stalls the corpus-manager goroutine on a message,
	// modelling a slow exchange path (healthy shards must keep fuzzing).
	CorpusDelay Site = "fuzz.corpus-delay"
	// CorpusDrop loses a corpus-channel message entirely (coverage is
	// unaffected — it merges through the bitmap, not the channel).
	CorpusDrop Site = "fuzz.corpus-drop"
	// CheckpointWrite fails a checkpoint file write mid-stream, leaving a
	// truncated temp file behind — the torn-write crash the atomic
	// write-then-rename protocol must survive.
	CheckpointWrite Site = "fuzz.checkpoint-write"
)

// ForShard scopes a site to one parallel-campaign shard, so chaos tests can
// kill shard 2 while shards 0, 1 and 3 stay healthy. The parallel layer
// probes both the generic site and the shard-scoped one.
func ForShard(s Site, shard int) Site {
	return Site(fmt.Sprintf("%s.%d", s, shard))
}

// rule decides when a site fires.
type rule struct {
	after int     // skip this many probes first
	count int     // then fire on this many (< 0: forever)
	prob  float64 // or: fire with this probability per probe
	isProb bool
}

// Injector holds the armed rules and per-site counters. The zero value (or
// a nil pointer) injects nothing.
type Injector struct {
	mu    sync.Mutex
	state uint64 // xorshift state for probabilistic rules
	rules map[Site]*rule
	hits  map[Site]int64 // probes seen
	fired map[Site]int64 // probes that injected a failure
}

// New returns an injector whose probabilistic rules draw from a stream
// seeded by seed, so a failing test reproduces from its seed alone.
func New(seed uint64) *Injector {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	return &Injector{
		state: z,
		rules: make(map[Site]*rule),
		hits:  make(map[Site]int64),
		fired: make(map[Site]int64),
	}
}

// FailAfter arms site to succeed for the next `after` probes, then fail the
// following `count` probes (count < 0 means fail forever). It replaces any
// existing rule and resets the site's counters.
func (in *Injector) FailAfter(site Site, after, count int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[site] = &rule{after: after, count: count}
	in.hits[site] = 0
	in.fired[site] = 0
}

// FailWithProb arms site to fail each probe independently with probability
// p, drawn from the injector's seeded stream.
func (in *Injector) FailWithProb(site Site, p float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[site] = &rule{prob: p, isProb: true}
	in.hits[site] = 0
	in.fired[site] = 0
}

// Clear disarms one site (its counters survive for inspection).
func (in *Injector) Clear(site Site) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.rules, site)
}

// Reset disarms every site and zeroes all counters.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = make(map[Site]*rule)
	in.hits = make(map[Site]int64)
	in.fired = make(map[Site]int64)
}

// Should reports whether the current probe of site must fail. Safe on a nil
// receiver (always false) so hook sites need no guard.
func (in *Injector) Should(site Site) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r, ok := in.rules[site]
	if !ok {
		return false
	}
	n := in.hits[site]
	in.hits[site] = n + 1
	fire := false
	if r.isProb {
		fire = in.randFloat() < r.prob
	} else if n >= int64(r.after) {
		fire = r.count < 0 || n < int64(r.after)+int64(r.count)
	}
	if fire {
		in.fired[site]++
	}
	return fire
}

// Hits returns how many times site has been probed since it was armed.
func (in *Injector) Hits(site Site) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Fired returns how many probes of site injected a failure.
func (in *Injector) Fired(site Site) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}

// Armed lists the currently armed sites, sorted, for diagnostics.
func (in *Injector) Armed() []Site {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Site, 0, len(in.rules))
	for s := range in.rules {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Err builds the error reported for an injected failure at site, so callers
// can tell injected faults from organic ones in logs.
func Err(site Site) error {
	return fmt.Errorf("faultinject: injected failure at %s", site)
}

// randFloat returns a uniform float64 in [0, 1). Caller holds in.mu.
func (in *Injector) randFloat() float64 {
	x := in.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	in.state = x
	return float64(x>>11) / float64(1<<53)
}
