package faultinject

import "testing"

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if in.Should(HeapAlloc) {
			t.Fatal("nil injector fired")
		}
	}
	if in.Hits(HeapAlloc) != 0 || in.Fired(HeapAlloc) != 0 {
		t.Fatal("nil injector counted")
	}
	if in.Armed() != nil {
		t.Fatal("nil injector armed")
	}
}

func TestFailAfterWindow(t *testing.T) {
	in := New(1)
	in.FailAfter(VFSOpen, 3, 2)
	var got []bool
	for i := 0; i < 7; i++ {
		got = append(got, in.Should(VFSOpen))
	}
	want := []bool{false, false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("probe %d: got %v want %v (seq %v)", i, got[i], want[i], got)
		}
	}
	if in.Hits(VFSOpen) != 7 || in.Fired(VFSOpen) != 2 {
		t.Fatalf("counters: hits=%d fired=%d", in.Hits(VFSOpen), in.Fired(VFSOpen))
	}
}

func TestFailForever(t *testing.T) {
	in := New(1)
	in.FailAfter(RestoreGlobals, 0, -1)
	for i := 0; i < 50; i++ {
		if !in.Should(RestoreGlobals) {
			t.Fatalf("probe %d did not fire", i)
		}
	}
}

func TestUnarmedSiteIsQuiet(t *testing.T) {
	in := New(1)
	in.FailAfter(HeapAlloc, 0, -1)
	if in.Should(VFSClose) {
		t.Fatal("unarmed site fired")
	}
	if !in.Should(HeapAlloc) {
		t.Fatal("armed site silent")
	}
}

func TestClearAndReset(t *testing.T) {
	in := New(1)
	in.FailAfter(HeapAlloc, 0, -1)
	in.Clear(HeapAlloc)
	if in.Should(HeapAlloc) {
		t.Fatal("cleared site fired")
	}
	in.FailAfter(VFSOpen, 0, -1)
	in.Reset()
	if in.Should(VFSOpen) {
		t.Fatal("reset site fired")
	}
	if len(in.Armed()) != 0 {
		t.Fatal("reset left rules armed")
	}
}

func TestForShardScopesSites(t *testing.T) {
	in := New(1)
	// Arming shard 1's kill site must not fire shard 0's, nor the generic
	// (unscoped) site, and vice versa.
	in.FailAfter(ForShard(ShardKill, 1), 0, -1)
	if in.Should(ForShard(ShardKill, 0)) {
		t.Fatal("shard 0 site fired from shard 1's rule")
	}
	if in.Should(ShardKill) {
		t.Fatal("generic site fired from a shard-scoped rule")
	}
	if !in.Should(ForShard(ShardKill, 1)) {
		t.Fatal("armed shard-scoped site silent")
	}
	if got := ForShard(ShardRestore, 3); got != Site("fuzz.shard-restore.3") {
		t.Fatalf("ForShard naming drifted: %q", got)
	}
	// Per-shard counters stay per-shard.
	if in.Fired(ForShard(ShardKill, 0)) != 0 || in.Fired(ForShard(ShardKill, 1)) != 1 {
		t.Fatalf("scoped counters crossed: shard0=%d shard1=%d",
			in.Fired(ForShard(ShardKill, 0)), in.Fired(ForShard(ShardKill, 1)))
	}
}

func TestProbabilisticIsSeededDeterministic(t *testing.T) {
	seq := func(seed uint64) []bool {
		in := New(seed)
		in.FailWithProb(HeapAlloc, 0.5)
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.Should(HeapAlloc))
		}
		return out
	}
	a, b := seq(42), seq(42)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at probe %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == 64 {
		t.Fatalf("p=0.5 fired %d/64 — rule not probabilistic", fired)
	}
}
