package harness

import (
	"bytes"
	"testing"

	"closurex/internal/faultinject"
	"closurex/internal/ir"
)

// Tests for the dirty-tracking incremental restore fast path: it must
// produce exactly the same post-restore image as the full section copy,
// while moving only the dirtied pages' bytes.

func TestIncrementalRestoreMatchesFullCopy(t *testing.T) {
	full := FullRestore()
	full.IncrementalRestore = false
	hFull := newHarness(t, statefulSrc, full)
	hIncr := newHarness(t, statefulSrc, FullRestore())
	if hFull.Incremental() {
		t.Fatal("full-copy harness reports incremental")
	}
	if !hIncr.Incremental() {
		t.Fatal("incremental fast path not armed despite IncrementalRestore")
	}

	inputs := [][]byte{[]byte("a"), []byte("X"), []byte("zz"), {0}, []byte("qqq")}
	for i := 0; i < 50; i++ {
		in := inputs[i%len(inputs)]
		rf := hFull.RunOne(in)
		ri := hIncr.RunOne(in)
		if (rf.Fault == nil) != (ri.Fault == nil) || rf.Ret != ri.Ret || rf.ExitCode != ri.ExitCode {
			t.Fatalf("run %d diverged: full=(%v,%v,%v) incr=(%v,%v,%v)",
				i, rf.Ret, rf.ExitCode, rf.Fault, ri.Ret, ri.ExitCode, ri.Fault)
		}
		sf, _ := hFull.VM().SnapshotSection(ir.SectionClosure)
		si, _ := hIncr.VM().SnapshotSection(ir.SectionClosure)
		if !bytes.Equal(sf, si) {
			t.Fatalf("run %d: post-restore sections differ", i)
		}
	}
	if err := hIncr.Verify(); err != nil {
		t.Fatalf("watchdog rejected the incrementally restored image: %v", err)
	}
}

func TestIncrementalRestoreCopiesFewerBytes(t *testing.T) {
	full := FullRestore()
	full.IncrementalRestore = false
	hFull := newHarness(t, statefulSrc, full)
	hIncr := newHarness(t, statefulSrc, FullRestore())

	const n = 20
	for i := 0; i < n; i++ {
		hFull.RunOne([]byte("a"))
		hIncr.RunOne([]byte("a"))
	}
	sf, si := hFull.Stats(), hIncr.Stats()
	if si.IncrRestores != n {
		t.Fatalf("IncrRestores = %d, want %d", si.IncrRestores, n)
	}
	if sf.IncrRestores != 0 {
		t.Fatalf("full-copy harness counted %d incremental restores", sf.IncrRestores)
	}
	// statefulSrc touches a handful of globals per run; dirty-page copy-back
	// must not exceed the full section copy (and is strictly smaller as soon
	// as the section spans more than the dirtied pages).
	if si.GlobalBytes > sf.GlobalBytes {
		t.Fatalf("incremental copied %d bytes, full copy %d", si.GlobalBytes, sf.GlobalBytes)
	}
}

func TestIncrementalRestoreFaultLeavesDirtySetForRetry(t *testing.T) {
	// An injected copy-back failure must not consume the dirty set: the
	// retry (Restore is idempotent) still knows which pages to repair.
	inj := faultinject.New(1)
	h := newFaultyHarness(t, inj) // FullRestore defaults: incremental on
	if !h.Incremental() {
		t.Fatal("incremental path not armed under FullRestore defaults")
	}
	fresh, _ := h.VM().SnapshotSection(ir.SectionClosure)

	inj.FailAfter(faultinject.RestoreGlobals, 0, 1)
	if res := h.RunOne([]byte("b")); res.Fault != nil {
		t.Fatalf("iteration itself must not fault: %v", res.Fault)
	}
	if err := h.TakeRestoreError(); err == nil {
		t.Fatal("injected restore failure was not reported")
	}
	after, _ := h.VM().SnapshotSection(ir.SectionClosure)
	if bytes.Equal(fresh, after) {
		t.Fatal("section unexpectedly clean after a failed restore; fault not exercised")
	}

	// The retry must repair the image through the same incremental path.
	if err := h.Restore(); err != nil {
		t.Fatalf("repair restore failed: %v", err)
	}
	repaired, _ := h.VM().SnapshotSection(ir.SectionClosure)
	if !bytes.Equal(fresh, repaired) {
		t.Fatal("retry after injected failure did not restore the section")
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("watchdog rejected the repaired image: %v", err)
	}
}
