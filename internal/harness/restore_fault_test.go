package harness

import (
	"testing"

	"closurex/internal/faultinject"
	"closurex/internal/vm"
)

// newFaultyHarness builds a harness over statefulSrc with inj armed in both
// the VM (heap/files) and the restore paths.
func newFaultyHarness(t *testing.T, inj *faultinject.Injector) *Harness {
	t.Helper()
	m := buildInstrumented(t, statefulSrc)
	v, err := vm.New(m, vm.Options{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	opts := FullRestore()
	opts.Injector = inj
	h, err := New(v, opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestInjectedGlobalRestoreFailureCaughtByWatchdog(t *testing.T) {
	inj := faultinject.New(1)
	h := newFaultyHarness(t, inj)

	// Healthy iteration first: restore succeeds, watchdog is quiet.
	if res := h.RunOne([]byte("a")); res.Fault != nil {
		t.Fatalf("clean run faulted: %v", res.Fault)
	}
	if err := h.TakeRestoreError(); err != nil {
		t.Fatalf("clean run reported restore error: %v", err)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("watchdog tripped on a healthy image: %v", err)
	}

	// Now the global copy-back fails once: the iteration's result stands,
	// but the error is recorded and the polluted section is detectable.
	inj.FailAfter(faultinject.RestoreGlobals, 0, 1)
	if res := h.RunOne([]byte("b")); res.Fault != nil {
		t.Fatalf("iteration itself must not fault: %v", res.Fault)
	}
	if err := h.TakeRestoreError(); err == nil {
		t.Fatal("injected restore failure was not reported")
	}
	if err := h.Verify(); err == nil {
		t.Fatal("watchdog missed the polluted closure_global_section")
	}

	// A successful re-restore repairs the image.
	if err := h.Restore(); err != nil {
		t.Fatalf("repair restore failed: %v", err)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("watchdog still tripping after repair: %v", err)
	}
}

func TestInjectedHeapRestoreFailureLeavesDetectableChunks(t *testing.T) {
	inj := faultinject.New(2)
	h := newFaultyHarness(t, inj)

	// Fail the leaked-chunk sweep during restore ("allocation bookkeeping
	// failure during restore"): the leak from the iteration survives.
	inj.FailAfter(faultinject.RestoreHeap, 0, 1)
	if res := h.RunOne([]byte("a")); res.Fault != nil {
		t.Fatalf("iteration faulted: %v", res.Fault)
	}
	if err := h.TakeRestoreError(); err == nil {
		t.Fatal("heap restore failure not reported")
	}
	if n := h.VM().Heap.LiveChunks(); n == 0 {
		t.Fatal("expected the leaked chunk to survive the failed sweep")
	}
	if err := h.Verify(); err == nil {
		t.Fatal("watchdog missed the surviving test-case chunks")
	}
	if err := h.Restore(); err != nil {
		t.Fatalf("repair restore failed: %v", err)
	}
	if n := h.VM().Heap.LiveChunks(); n != 0 {
		t.Fatalf("%d chunks survive the repair", n)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("watchdog after repair: %v", err)
	}
}

func TestAllocationFailureMidIterationRestoresCleanly(t *testing.T) {
	inj := faultinject.New(3)
	h := newFaultyHarness(t, inj)

	// malloc fails mid-iteration: the target gets NULL, null-derefs, and
	// the sanitizer reports it — but the harness still restores a clean
	// image for the next test case.
	inj.FailAfter(faultinject.HeapAlloc, 0, 1)
	res := h.RunOne([]byte("a"))
	if res.Fault == nil || res.Fault.Kind != vm.FaultNullDeref {
		t.Fatalf("expected null deref from failed malloc, got %+v", res)
	}
	if err := h.TakeRestoreError(); err != nil {
		t.Fatalf("restore after the crash failed: %v", err)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("image dirty after crashing iteration: %v", err)
	}
	if res := h.RunOne([]byte("a")); res.Fault != nil || res.Ret != 1 {
		t.Fatalf("next iteration sees residue: %+v", res)
	}
}

func TestFDExhaustionMidIteration(t *testing.T) {
	inj := faultinject.New(4)
	h := newFaultyHarness(t, inj)

	// fopen fails as if the descriptor table were exhausted; the target
	// aborts on the NULL handle. The image must come back clean.
	inj.FailAfter(faultinject.VFSOpen, 0, 1)
	res := h.RunOne([]byte("a"))
	if res.Fault == nil || res.Fault.Kind != vm.FaultAbort {
		t.Fatalf("expected abort on failed fopen, got %+v", res)
	}
	if err := h.TakeRestoreError(); err != nil {
		t.Fatalf("restore error: %v", err)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("watchdog: %v", err)
	}
	if res := h.RunOne([]byte("a")); res.Fault != nil || res.Ret != 1 {
		t.Fatalf("recovery iteration: %+v", res)
	}
}

func TestInjectedCloseFailureLeaksDescriptorDetectably(t *testing.T) {
	inj := faultinject.New(5)
	h := newFaultyHarness(t, inj)

	// The exit path leaks the input FD; the harness tries to close it and
	// the close itself fails. The descriptor must remain visible to the
	// watchdog rather than silently vanishing from the books.
	inj.FailAfter(faultinject.VFSClose, 0, 1)
	res := h.RunOne([]byte("X")) // exit(9) path leaks the FD
	if !res.Exited {
		t.Fatalf("expected exit, got %+v", res)
	}
	if err := h.TakeRestoreError(); err == nil {
		t.Fatal("failed close not reported")
	}
	if n := h.VM().FS.OpenCount(); n != 1 {
		t.Fatalf("OpenCount = %d, want the leaked FD still live", n)
	}
	if err := h.Verify(); err == nil {
		t.Fatal("watchdog missed the leaked descriptor")
	}
	if err := h.Restore(); err != nil {
		t.Fatalf("repair restore: %v", err)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("watchdog after repair: %v", err)
	}
}

func TestDoubleRestoreAfterExitUnwindIsIdempotent(t *testing.T) {
	h := newHarness(t, statefulSrc, FullRestore())

	res := h.RunOne([]byte("X")) // exit-hook unwind; RunOne already restored
	if !res.Exited || res.ExitCode != 9 {
		t.Fatalf("expected exit(9), got %+v", res)
	}
	freed, closed := h.Stats().ChunksFreed, h.Stats().FDsClosed

	// Second restore on an already-clean image: no error, no extra work.
	if err := h.Restore(); err != nil {
		t.Fatalf("double restore errored: %v", err)
	}
	if h.Stats().ChunksFreed != freed || h.Stats().FDsClosed != closed {
		t.Fatalf("double restore repeated work: chunks %d->%d, fds %d->%d",
			freed, h.Stats().ChunksFreed, closed, h.Stats().FDsClosed)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("watchdog after double restore: %v", err)
	}
	if res := h.RunOne([]byte("a")); res.Fault != nil || res.Ret != 1 {
		t.Fatalf("iteration after double restore: %+v", res)
	}
}
