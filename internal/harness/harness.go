// Package harness implements the ClosureX runtime: the loop body from the
// paper's Listing 1. Each test case runs inside one long-lived VM ("a
// single process for the whole campaign"); after target_main returns — or
// after the ExitPass hook unwinds the stack, our setjmp/longjmp — the
// harness restores exactly the test-case-execution-specific state:
//
//	restore_global_sections()   — byte-copy closure_global_section back
//	reset_heap_memory()         — free every chunk left in the chunk map
//	close_open_file_handles()   — close leaked FDs, rewind init-time FDs
package harness

import (
	"fmt"

	"closurex/internal/ir"
	"closurex/internal/passes"
	"closurex/internal/vfs"
	"closurex/internal/vm"
)

// Options tunes which pieces of state the harness restores — the knobs the
// ablation study flips. A production harness restores everything.
type Options struct {
	RestoreGlobals bool
	ResetHeap      bool
	CloseFiles     bool
	// RunDeferredInit invokes passes.InitFunc once before the loop and
	// marks the resulting heap/FD state as persistent (DeferInitPass).
	RunDeferredInit bool
}

// FullRestore enables every restoration step.
func FullRestore() Options {
	return Options{RestoreGlobals: true, ResetHeap: true, CloseFiles: true, RunDeferredInit: true}
}

// Stats counts restoration work, for the overhead-breakdown figure.
type Stats struct {
	Iterations   int64
	GlobalBytes  int64 // bytes copied back per iteration x iterations
	ChunksFreed  int64
	FDsClosed    int64
	FDsRewound   int64
	ExitsUnwound int64 // iterations that ended via the exit hook
}

// Harness wraps a VM whose module went through the ClosureX pipeline.
type Harness struct {
	v          *vm.VM
	opts       Options
	globalSnap []byte
	stats      Stats
}

// New prepares the harness: optionally runs deferred initialization, marks
// initialization-time heap chunks and descriptors as persistent, and takes
// the ground-truth snapshot of closure_global_section (Figure 4, left).
func New(v *vm.VM, opts Options) (*Harness, error) {
	h := &Harness{v: v, opts: opts}
	if v.Mod.Func(passes.TargetMain) == nil {
		return nil, fmt.Errorf("harness: module lacks %s (run the pass pipeline first)", passes.TargetMain)
	}
	if opts.RunDeferredInit && v.Mod.Func(passes.InitFunc) != nil {
		res := v.Call(passes.InitFunc)
		if res.Fault != nil {
			return nil, fmt.Errorf("harness: deferred init faulted: %v", res.Fault)
		}
		if res.Exited {
			return nil, fmt.Errorf("harness: deferred init called exit(%d)", res.ExitCode)
		}
	}
	v.Heap.MarkInit()
	v.FS.MarkInit()
	if snap, ok := v.SnapshotSection(ir.SectionClosure); ok {
		h.globalSnap = snap
	}
	return h, nil
}

// VM exposes the underlying machine (correctness study probes).
func (h *Harness) VM() *vm.VM { return h.v }

// Stats returns accumulated restoration counters.
func (h *Harness) Stats() Stats { return h.stats }

// GlobalSnapshotSize reports the closure section size in bytes.
func (h *Harness) GlobalSnapshotSize() int { return len(h.globalSnap) }

// RunOne executes one test case and restores state for the next.
func (h *Harness) RunOne(input []byte) vm.Result {
	h.v.SetInput(input)
	res := h.v.Call(passes.TargetMain)
	h.stats.Iterations++
	if res.Exited {
		h.stats.ExitsUnwound++
	}
	h.Restore()
	return res
}

// Restore performs the between-test-cases cleanup. Exported separately so
// the correctness study can interleave probes.
func (h *Harness) Restore() {
	if h.opts.RestoreGlobals && h.globalSnap != nil {
		h.v.RestoreSection(ir.SectionClosure, h.globalSnap)
		h.stats.GlobalBytes += int64(len(h.globalSnap))
	}
	if h.opts.ResetHeap {
		for _, c := range h.v.Heap.Leaked() {
			// Chunks the target leaked; free() cannot fail on live chunks.
			if err := h.v.Heap.Free(c.Addr); err == nil {
				h.stats.ChunksFreed++
			}
		}
	}
	if h.opts.CloseFiles {
		for _, fd := range h.v.FS.LeakedFDs() {
			if err := h.v.FS.Close(fd); err == nil {
				h.stats.FDsClosed++
			}
		}
		for _, fd := range h.v.FS.InitFDs() {
			// Initialization-time handles are rewound, not reopened — the
			// paper's optimization for init handles.
			if _, err := h.v.FS.Seek(fd, 0, vfs.SeekSet); err == nil {
				h.stats.FDsRewound++
			}
		}
	}
}
