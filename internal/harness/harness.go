// Package harness implements the ClosureX runtime: the loop body from the
// paper's Listing 1. Each test case runs inside one long-lived VM ("a
// single process for the whole campaign"); after target_main returns — or
// after the ExitPass hook unwinds the stack, our setjmp/longjmp — the
// harness restores exactly the test-case-execution-specific state:
//
//	restore_global_sections()   — byte-copy closure_global_section back
//	reset_heap_memory()         — free every chunk left in the chunk map
//	close_open_file_handles()   — close leaked FDs, rewind init-time FDs
package harness

import (
	"bytes"
	"errors"
	"fmt"

	"closurex/internal/faultinject"
	"closurex/internal/ir"
	"closurex/internal/mem"
	"closurex/internal/passes"
	"closurex/internal/vfs"
	"closurex/internal/vm"
)

// Sentinel errors the resilience layer and tests branch on with errors.Is.
var (
	// ErrRestore wraps every failure of the between-iteration restore
	// steps (global copy-back, heap reset, descriptor close/rewind).
	ErrRestore = errors.New("harness: restore failed")
	// ErrWatchdog wraps every post-restore invariant violation Verify
	// detects — the image has drifted and must be quarantined/rebuilt.
	ErrWatchdog = errors.New("harness: watchdog invariant violated")
	// ErrAudit wraps every violation of an interprocedural elision proof
	// observed at runtime: a byte outside the may-write scope drifted, or
	// a must-free chunk / must-close descriptor survived a non-crashed
	// iteration. Audit errors also wrap ErrWatchdog (multi-%w) so the
	// resilience layer's quarantine/rebuild reflex fires unchanged.
	ErrAudit = errors.New("harness: elision audit violated")
)

// Options tunes which pieces of state the harness restores — the knobs the
// ablation study flips. A production harness restores everything.
type Options struct {
	RestoreGlobals bool
	ResetHeap      bool
	CloseFiles     bool
	// RunDeferredInit invokes passes.InitFunc once before the loop and
	// marks the resulting heap/FD state as persistent (DeferInitPass).
	RunDeferredInit bool
	// IncrementalRestore arms page-granular dirty tracking on
	// closure_global_section: the restore step copies back only the pages
	// the execution actually wrote instead of the whole snapshot. Restored
	// state is byte-identical either way (the watchdog and the divergence
	// sentinel cross-check it continuously); the flag only changes the
	// restore-path bandwidth. Disabled means the original full byte-copy.
	IncrementalRestore bool
	// ElideRestore scopes the global snapshot/restore/watchdog work to the
	// byte ranges the interprocedural analysis proved may be written
	// (ir.Module.Interproc). It is a no-op — the full section is restored
	// as before — when the module carries no metadata or the analysis
	// could not bound the write set. Restored state is byte-identical
	// either way as long as the proofs hold; AuditEvery cross-checks them
	// at runtime.
	ElideRestore bool
	// AuditEvery, when positive, re-checks the FULL closure section (and
	// the must-free/must-close censuses) against the init snapshot every N
	// iterations, repairing and reporting an ErrAudit on any drift the
	// elided restore would have missed. Zero disables auditing.
	AuditEvery int
	// Injector arms deterministic fault injection in the restore paths
	// (resilience tests); nil injects nothing.
	Injector *faultinject.Injector
}

// FullRestore enables every restoration step, with the dirty-tracking
// incremental restore fast path armed.
func FullRestore() Options {
	return Options{RestoreGlobals: true, ResetHeap: true, CloseFiles: true,
		RunDeferredInit: true, IncrementalRestore: true}
}

// Stats counts restoration work, for the overhead-breakdown figure.
type Stats struct {
	Iterations   int64
	GlobalBytes  int64 // bytes actually copied back across all restores
	ChunksFreed  int64
	FDsClosed    int64
	FDsRewound   int64
	ExitsUnwound int64 // iterations that ended via the exit hook
	// IncrRestores counts restores that went through the dirty-tracking
	// fast path; GlobalBytes then reflects only dirty bytes, which is the
	// bandwidth saving the fast path exists for.
	IncrRestores int64
	// ShadowPagesRestored counts shadow-plane pages rolled back to the
	// init-time snapshot across all restores (-sanitize only). The shadow
	// restore piggybacks on the same dirty-tracking idea as the closure
	// section's incremental restore.
	ShadowPagesRestored int64
	// GlobalBytesElided counts bytes the scoped full-copy restore skipped
	// relative to a whole-section copy (ElideRestore, non-incremental
	// path) — the elision bandwidth saving.
	GlobalBytesElided int64
	// ElidedLeaks/ElidedFDLeaks count proof violations the restore sweeps
	// observed: chunks from must-free allocation sites (respectively
	// descriptors from must-close fopen sites) still live after a
	// non-crashed iteration. Nonzero means the static analysis was wrong.
	ElidedLeaks   int64
	ElidedFDLeaks int64
	// AuditRuns/AuditFailures count full-section elision audits and the
	// subset that found drift outside the may-write scope (AuditEvery).
	AuditRuns     int64
	AuditFailures int64
}

// Harness wraps a VM whose module went through the ClosureX pipeline.
type Harness struct {
	v          *vm.VM
	opts       Options
	globalSnap []byte
	stats      Stats
	// incremental reports that the dirty-page watch is armed on the closure
	// section (IncrementalRestore requested and the section exists).
	incremental bool
	// verifyBuf is the reusable post-run section snapshot Verify compares
	// against globalSnap — preallocated once so the watchdog does not
	// allocate a fresh section copy on every periodic check.
	verifyBuf []byte
	// chunkScratch/fdScratch back the per-restore leak censuses so the hot
	// loop does not allocate a fresh slice every iteration.
	chunkScratch []mem.Chunk
	fdScratch    []int
	// shadowSnap/quarSnap capture the sanitizer's shadow plane and free
	// quarantine as they stood after deferred init (-sanitize only). Each
	// restore rolls both back so shadow state — like every other plane of
	// persistent state — is test-case-execution-specific.
	shadowSnap *mem.ShadowSnapshot
	quarSnap   []mem.Chunk
	// elide is set when ElideRestore was requested AND the module's
	// interproc metadata bounds the may-write set; elideRanges are the
	// merged section-relative byte ranges restore/verify then scope to
	// (possibly empty: a target that writes no globals restores none).
	elide       bool
	elideRanges []vm.ByteRange
	// lastCrashed records whether the most recent execution ended in a
	// fault; the elided-leak censuses skip crashed iterations, whose
	// targets never reached their free/fclose paths by construction.
	lastCrashed bool
	// sinceAudit counts iterations since the last full-section audit.
	sinceAudit int
	// restoreErr is the first error the most recent restore hit; the
	// resilience layer drains it via TakeRestoreError after each iteration.
	restoreErr error
}

// New prepares the harness: optionally runs deferred initialization, marks
// initialization-time heap chunks and descriptors as persistent, and takes
// the ground-truth snapshot of closure_global_section (Figure 4, left).
func New(v *vm.VM, opts Options) (*Harness, error) {
	h := &Harness{v: v, opts: opts}
	if v.Mod.Func(passes.TargetMain) == nil {
		return nil, fmt.Errorf("harness: module lacks %s (run the pass pipeline first)", passes.TargetMain)
	}
	if opts.RunDeferredInit && v.Mod.Func(passes.InitFunc) != nil {
		res := v.Call(passes.InitFunc)
		if res.Fault != nil {
			return nil, fmt.Errorf("harness: deferred init faulted: %v", res.Fault)
		}
		if res.Exited {
			return nil, fmt.Errorf("harness: deferred init called exit(%d)", res.ExitCode)
		}
	}
	v.Heap.MarkInit()
	v.FS.MarkInit()
	if sh := v.Heap.Shadow(); sh != nil && opts.ResetHeap {
		// Ground truth for the sanitizer planes: init-time poison (redzones
		// of persistent chunks) must survive every restore, and anything a
		// test case poisons or unpoisons must be rolled back. Snapshot()
		// also arms the shadow's page-granular dirty tracking.
		h.quarSnap = v.Heap.QuarantineSnapshot()
		h.shadowSnap = sh.Snapshot()
	}
	if snap, ok := v.SnapshotSection(ir.SectionClosure); ok {
		h.globalSnap = snap
		h.verifyBuf = make([]byte, len(snap))
		if opts.IncrementalRestore && opts.RestoreGlobals {
			// Arm the write barrier exactly at snapshot time: every write
			// from here on is a candidate for copy-back, so the dirty set is
			// complete by construction.
			h.incremental = v.WatchSection(ir.SectionClosure)
		}
		if opts.ElideRestore && opts.RestoreGlobals && v.MaxBudget() <= ir.InterprocBudgetCap {
			// Scope restore work to the analysis-proven may-write ranges.
			// ok is false (and the harness silently keeps whole-section
			// behavior) when no metadata was stamped or the analysis
			// degraded to whole-section. Budgets above InterprocBudgetCap
			// void the analysis' wraparound argument, so elision stays off.
			if ranges, rok := v.ElisionRanges(ir.SectionClosure); rok {
				h.elide = true
				h.elideRanges = ranges
			}
		}
	}
	return h, nil
}

// Incremental reports whether the dirty-tracking restore fast path is
// active.
func (h *Harness) Incremental() bool { return h.incremental }

// VM exposes the underlying machine (correctness study probes).
func (h *Harness) VM() *vm.VM { return h.v }

// Stats returns accumulated restoration counters.
func (h *Harness) Stats() Stats { return h.stats }

// GlobalSnapshotSize reports the closure section size in bytes.
func (h *Harness) GlobalSnapshotSize() int { return len(h.globalSnap) }

// ElisionActive reports whether the restore/verify paths are scoped to
// the interprocedural may-write ranges.
func (h *Harness) ElisionActive() bool { return h.elide }

// ElisionRangeBytes reports how many closure-section bytes fall inside
// the may-write scope (equals GlobalSnapshotSize when elision is off).
func (h *Harness) ElisionRangeBytes() int {
	if !h.elide {
		return len(h.globalSnap)
	}
	n := 0
	for _, r := range h.elideRanges {
		n += int(r.Hi - r.Lo)
	}
	return n
}

// RunOne executes one test case and restores state for the next. A restore
// failure is not part of the test case's result — it is recorded and
// drained by the resilience layer via TakeRestoreError.
func (h *Harness) RunOne(input []byte) vm.Result {
	h.v.SetInput(input)
	res := h.v.Call(passes.TargetMain)
	h.stats.Iterations++
	if res.Exited {
		h.stats.ExitsUnwound++
	}
	h.lastCrashed = res.Crashed()
	if err := h.Restore(); err != nil {
		h.restoreErr = err
	}
	if h.opts.AuditEvery > 0 {
		h.sinceAudit++
		if h.sinceAudit >= h.opts.AuditEvery {
			h.sinceAudit = 0
			if err := h.Audit(); err != nil && h.restoreErr == nil {
				h.restoreErr = err
			}
		}
	}
	return res
}

// TakeRestoreError returns and clears the first error the most recent
// restore hit (nil when restoration succeeded). The execmgr resilience
// layer polls this after every execution: a non-nil value means the
// process image can no longer be trusted and must be quarantined/rebuilt.
func (h *Harness) TakeRestoreError() error {
	err := h.restoreErr
	h.restoreErr = nil
	return err
}

// Restore performs the between-test-cases cleanup. Exported separately so
// the correctness study can interleave probes. It is idempotent: a second
// Restore after an exit-hook unwind (or a partial first attempt) only
// re-runs the steps that still have work to do. The returned error is the
// first failure encountered; later steps still run so a single bad close
// does not leave the heap polluted too.
func (h *Harness) Restore() error {
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	inj := h.opts.Injector
	if h.opts.RestoreGlobals && h.globalSnap != nil {
		if inj.Should(faultinject.RestoreGlobals) {
			// The dirty set is deliberately NOT reset on an injected
			// failure: a retry (Restore is idempotent) still knows which
			// pages to copy back.
			fail(faultinject.Err(faultinject.RestoreGlobals))
		} else if h.elide && h.incremental {
			copied, _ := h.v.RestoreSectionDirtyRanges(ir.SectionClosure, h.globalSnap, h.elideRanges)
			h.stats.GlobalBytes += int64(copied)
			h.stats.IncrRestores++
		} else if h.elide {
			copied, _ := h.v.RestoreSectionRanges(ir.SectionClosure, h.globalSnap, h.elideRanges)
			h.stats.GlobalBytes += int64(copied)
			h.stats.GlobalBytesElided += int64(len(h.globalSnap) - copied)
		} else if h.incremental {
			copied, _ := h.v.RestoreSectionDirty(ir.SectionClosure, h.globalSnap)
			h.stats.GlobalBytes += int64(copied)
			h.stats.IncrRestores++
		} else {
			h.v.RestoreSection(ir.SectionClosure, h.globalSnap)
			h.stats.GlobalBytes += int64(len(h.globalSnap))
		}
	}
	if h.opts.ResetHeap {
		if inj.Should(faultinject.RestoreHeap) {
			fail(faultinject.Err(faultinject.RestoreHeap))
		} else {
			h.chunkScratch = h.v.Heap.AppendLeaked(h.chunkScratch[:0])
			elidedLeaks := 0
			for _, c := range h.chunkScratch {
				if c.Elided && !h.lastCrashed {
					// A chunk from a must-free site survived a non-crashed
					// iteration: the lifetime proof was wrong. The sweep
					// below repairs it; the census makes it loud.
					elidedLeaks++
				}
				// Chunks the target leaked; free() cannot fail on live chunks.
				if err := h.v.Heap.Free(c.Addr); err == nil {
					h.stats.ChunksFreed++
				} else {
					fail(fmt.Errorf("harness: reset heap: %w", err))
				}
			}
			if elidedLeaks > 0 {
				h.stats.ElidedLeaks += int64(elidedLeaks)
				if h.opts.AuditEvery > 0 {
					fail(fmt.Errorf("%w: %w: %d chunks from must-free sites survived a non-crashed iteration",
						ErrWatchdog, ErrAudit, elidedLeaks))
				}
			}
			if h.shadowSnap != nil {
				// Order matters: freeing leaked chunks above poisons their
				// spans, and those poison writes land on the dirty list —
				// so the shadow restore that follows erases them along with
				// everything else the test case did. The quarantine rolls
				// back to its init contents so a UAF address found on
				// iteration N is still poisoned (and still attributable) on
				// iteration N+1000.
				h.v.Heap.RestoreQuarantine(h.quarSnap)
				h.stats.ShadowPagesRestored += int64(h.v.Heap.Shadow().RestoreDirty(h.shadowSnap))
			}
		}
	}
	if h.opts.CloseFiles {
		if inj.Should(faultinject.RestoreFiles) {
			fail(faultinject.Err(faultinject.RestoreFiles))
		} else {
			if n := h.v.FS.ElidedLeakCount(); n > 0 && !h.lastCrashed {
				h.stats.ElidedFDLeaks += int64(n)
				if h.opts.AuditEvery > 0 {
					fail(fmt.Errorf("%w: %w: %d descriptors from must-close sites survived a non-crashed iteration",
						ErrWatchdog, ErrAudit, n))
				}
			}
			h.fdScratch = h.v.FS.AppendLeakedFDs(h.fdScratch[:0])
			for _, fd := range h.fdScratch {
				if err := h.v.FS.Close(fd); err == nil {
					h.stats.FDsClosed++
				} else {
					fail(fmt.Errorf("harness: close leaked fd: %w", err))
				}
			}
			h.fdScratch = h.v.FS.AppendInitFDs(h.fdScratch[:0])
			for _, fd := range h.fdScratch {
				// Initialization-time handles are rewound, not reopened — the
				// paper's optimization for init handles.
				if _, err := h.v.FS.Seek(fd, 0, vfs.SeekSet); err == nil {
					h.stats.FDsRewound++
				} else {
					fail(fmt.Errorf("harness: rewind init fd: %w", err))
				}
			}
		}
	}
	if firstErr != nil {
		// Double-wrap so callers can branch on the broad class
		// (errors.Is(err, ErrRestore)) or the precise cause (the injected
		// fault kind, the vfs error) without string matching.
		return fmt.Errorf("%w: %w", ErrRestore, firstErr)
	}
	return nil
}

// Verify is the restore watchdog: it validates the post-restore invariants
// that make persistent execution equivalent to a fresh process. Each check
// applies only when the corresponding restore option is enabled (ablated
// harnesses legitimately leave state behind). A non-nil return means the
// image has drifted and subsequent executions would run against polluted
// state — the caller must quarantine/rebuild rather than continue.
func (h *Harness) Verify() error {
	if h.opts.ResetHeap {
		// Live-chunk census: every test-case allocation must be gone.
		if n := h.v.Heap.LeakedCount(); n != 0 {
			return fmt.Errorf("%w: %d test-case heap chunks survive restore", ErrWatchdog, n)
		}
		if h.shadowSnap != nil {
			if !h.v.Heap.Shadow().Equal(h.shadowSnap) {
				return fmt.Errorf("%w: sanitizer shadow plane differs from init snapshot", ErrWatchdog)
			}
			if n := h.v.Heap.QuarantineLen(); n != len(h.quarSnap) {
				return fmt.Errorf("%w: free quarantine holds %d chunks, snapshot had %d",
					ErrWatchdog, n, len(h.quarSnap))
			}
		}
	}
	if h.opts.RestoreGlobals && h.globalSnap != nil {
		cur, ok := h.v.SnapshotSectionInto(ir.SectionClosure, h.verifyBuf)
		if !ok {
			return fmt.Errorf("%w: %s vanished", ErrWatchdog, ir.SectionClosure)
		}
		h.verifyBuf = cur
		if h.elide {
			// Provably-clean globals leave the equality scope: the analysis
			// says the target cannot write them, so checking them every
			// watchdog tick buys nothing — Audit re-checks the full section
			// on its own (cheaper) cadence to keep the proofs honest.
			for _, r := range h.elideRanges {
				if !bytes.Equal(cur[r.Lo:r.Hi], h.globalSnap[r.Lo:r.Hi]) {
					return fmt.Errorf("%w: %s differs from snapshot inside may-write range [%d,%d)",
						ErrWatchdog, ir.SectionClosure, r.Lo, r.Hi)
				}
			}
		} else if !bytes.Equal(cur, h.globalSnap) {
			return fmt.Errorf("%w: %s differs from snapshot (%d bytes)",
				ErrWatchdog, ir.SectionClosure, diffBytes(cur, h.globalSnap))
		}
	}
	if h.opts.CloseFiles {
		if n := h.v.FS.LeakedCount(); n != 0 {
			return fmt.Errorf("%w: %d leaked descriptors survive restore", ErrWatchdog, n)
		}
		h.fdScratch = h.v.FS.AppendInitFDs(h.fdScratch[:0])
		for _, fd := range h.fdScratch {
			if pos, err := h.v.FS.Tell(fd); err != nil || pos != 0 {
				return fmt.Errorf("%w: init fd %d not rewound (pos %d, err %v)", ErrWatchdog, fd, pos, err)
			}
		}
	}
	return nil
}

// Audit is the -audit-restore runtime cross-check of the elision proofs:
// it compares the FULL closure section against the init snapshot — in
// particular the bytes the scoped restore never touches because the
// analysis proved them unwritable. Drift there means an elision proof was
// wrong; Audit repairs the section with a whole-section copy-back and
// returns an error wrapping both ErrAudit and ErrWatchdog so the
// resilience layer quarantines/rebuilds as it would for any drift. RunOne
// calls it every Options.AuditEvery iterations; it is also safe to call
// directly at any restore boundary.
func (h *Harness) Audit() error {
	if !h.opts.RestoreGlobals || h.globalSnap == nil {
		return nil
	}
	h.stats.AuditRuns++
	cur, ok := h.v.SnapshotSectionInto(ir.SectionClosure, h.verifyBuf)
	if !ok {
		return fmt.Errorf("%w: %w: %s vanished", ErrWatchdog, ErrAudit, ir.SectionClosure)
	}
	h.verifyBuf = cur
	if bytes.Equal(cur, h.globalSnap) {
		return nil
	}
	h.stats.AuditFailures++
	n := diffBytes(cur, h.globalSnap)
	// Repair: whole-section copy-back, exactly what a non-elided restore
	// would have done. The image is clean again; the proof is not.
	h.v.RestoreSection(ir.SectionClosure, h.globalSnap)
	return fmt.Errorf("%w: %w: %s drifted %d bytes outside the audited restore scope (repaired)",
		ErrWatchdog, ErrAudit, ir.SectionClosure, n)
}

// diffBytes counts positions where a and b differ (length mismatch counts
// the tail).
func diffBytes(a, b []byte) int {
	n := 0
	min := len(a)
	if len(b) < min {
		min = len(b)
	}
	for i := 0; i < min; i++ {
		if a[i] != b[i] {
			n++
		}
	}
	n += len(a) - min + len(b) - min
	return n
}
