package harness

import (
	"testing"

	"closurex/internal/ir"
	"closurex/internal/lower"
	"closurex/internal/passes"
	"closurex/internal/vm"
)

// readOnlySrc reads a global but never writes one: the interprocedural
// may-write set is empty, so the scoped restore has ZERO bytes to copy
// back. It still leaks a heap chunk and a descriptor every iteration —
// state the zero-range restore must keep sweeping.
const readOnlySrc = `
int cfg;

int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int c = fgetc(f);
	char *leak = (char*)malloc(32);
	leak[0] = (char)c;
	return c + cfg;   // leaks f and leak
}
`

func buildElided(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := lower.Compile("t.c", src, vm.Builtins())
	if err != nil {
		t.Fatal(err)
	}
	pm := passes.NewManager(vm.Builtins())
	pm.Add(passes.ClosureXPipeline(true)...)
	pm.Add(passes.InterprocPass{})
	pm.Add(passes.NewCoveragePass(1))
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestElisionZeroLengthMayWriteSet is the degenerate-scope regression: a
// target that writes no globals elides the ENTIRE section restore (zero
// ranges, zero copy-back bytes), and everything else the harness does —
// heap sweep, fd close, watchdog, audit — keeps working around the empty
// range list.
func TestElisionZeroLengthMayWriteSet(t *testing.T) {
	m := buildElided(t, readOnlySrc)
	info := m.Interproc
	if info == nil {
		t.Fatal("InterprocPass left no metadata")
	}
	if info.WholeSection || len(info.MayWriteGlobals) != 0 {
		t.Fatalf("expected empty may-write set, got whole=%v writes=%v",
			info.WholeSection, info.MayWriteGlobals)
	}
	v, err := vm.New(m, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := FullRestore()
	opts.ElideRestore = true
	opts.AuditEvery = 4
	// Pin the pure range-scoped restore: the incremental (dirty-page) path
	// would mask the zero-range arithmetic this test is about, and only
	// the scoped path accounts GlobalBytesElided.
	opts.IncrementalRestore = false
	h, err := New(v, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !h.ElisionActive() {
		t.Fatal("elision not armed on a fully-bounded module")
	}
	if h.GlobalSnapshotSize() == 0 {
		t.Fatal("closure section empty — the zero-range case is vacuous")
	}
	if n := h.ElisionRangeBytes(); n != 0 {
		t.Fatalf("ElisionRangeBytes = %d, want 0 for a read-only section", n)
	}
	for i := 0; i < 12; i++ {
		res := h.RunOne([]byte("a"))
		if res.Fault != nil {
			t.Fatalf("run %d fault: %v", i, res.Fault)
		}
		if err := h.TakeRestoreError(); err != nil {
			t.Fatalf("run %d restore: %v", i, err)
		}
		if n := h.VM().Heap.LiveChunks(); n != 0 {
			t.Fatalf("run %d: %d live chunks after zero-range restore", i, n)
		}
		if n := h.VM().FS.OpenCount(); n != 0 {
			t.Fatalf("run %d: %d open FDs after zero-range restore", i, n)
		}
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("watchdog after zero-range restores: %v", err)
	}
	if err := h.Audit(); err != nil {
		t.Fatalf("explicit audit after zero-range restores: %v", err)
	}
	st := h.Stats()
	if st.GlobalBytes != 0 {
		t.Fatalf("restore copied %d global bytes; a read-only section needs none", st.GlobalBytes)
	}
	if st.GlobalBytesElided == 0 {
		t.Fatal("no elided bytes counted — the scoped restore never engaged")
	}
	if st.AuditRuns < 3 || st.AuditFailures != 0 {
		t.Fatalf("audits = %d run / %d failed", st.AuditRuns, st.AuditFailures)
	}
	if st.ChunksFreed != 12 || st.FDsClosed != 12 {
		t.Fatalf("sweep stats = %d chunks / %d fds, want 12/12", st.ChunksFreed, st.FDsClosed)
	}
}
