package harness

import (
	"testing"

	"closurex/internal/passes"
	"closurex/internal/vm"
)

// sanSrc allocates, frees and (on demand) commits heap crimes, so the
// shadow plane and quarantine churn every iteration.
const sanSrc = `
int runs;

int main(void) {
	runs++;
	int f = fopen("/input", "r");
	if (!f) abort();
	int c = fgetc(f);
	char *a = (char*)malloc(24);
	a[0] = (char)c;
	char *b = (char*)malloc(100);
	b[99] = (char)c;
	free(a);
	if (c == 'U') {
		int v = a[0];   // use-after-free
		fclose(f);
		return v;
	}
	if (c == 'L') { fclose(f); return 1; }   // leaks b
	free(b);
	fclose(f);
	return runs;
}
`

// newSanHarness builds a sanitized module + VM with the shadow attached.
func newSanHarness(t *testing.T, opts Options) *Harness {
	t.Helper()
	m := buildInstrumented(t, sanSrc)
	if err := (passes.SanitizerPass{Elide: true}).Run(m); err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(m, vm.Options{Sanitize: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(v, opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestShadowRestoredBetweenIterations drives clean, leaking and crashing
// iterations through one image: after every restore the shadow plane and
// quarantine must match their init snapshots (Verify's invariant), and the
// UAF must be classified identically every time it is replayed.
func TestShadowRestoredBetweenIterations(t *testing.T) {
	h := newSanHarness(t, FullRestore())
	if h.VM().Heap.Shadow() == nil {
		t.Fatal("shadow not attached")
	}
	inputs := []string{"a", "L", "U", "b", "U", "L", "c"}
	var uafKind string
	for round := 0; round < 4; round++ {
		for _, in := range inputs {
			res := h.RunOne([]byte(in))
			if err := h.TakeRestoreError(); err != nil {
				t.Fatalf("round %d input %q: restore: %v", round, in, err)
			}
			if err := h.Verify(); err != nil {
				t.Fatalf("round %d input %q: watchdog: %v", round, in, err)
			}
			switch in {
			case "U":
				if res.Fault == nil {
					t.Fatalf("round %d: UAF not detected", round)
				}
				if uafKind == "" {
					uafKind = res.Fault.Key()
				} else if got := res.Fault.Key(); got != uafKind {
					t.Fatalf("round %d: UAF key drifted %q -> %q", round, uafKind, got)
				}
			default:
				if res.Fault != nil {
					t.Fatalf("round %d input %q: unexpected fault %v", round, in, res.Fault)
				}
			}
		}
	}
	if h.Stats().ShadowPagesRestored == 0 {
		t.Fatal("no shadow pages were ever restored")
	}
}

// TestShadowDriftCaughtByWatchdog pokes the shadow plane behind the
// harness's back: Verify must flag the drift.
func TestShadowDriftCaughtByWatchdog(t *testing.T) {
	h := newSanHarness(t, FullRestore())
	if res := h.RunOne([]byte("a")); res.Fault != nil {
		t.Fatalf("clean run faulted: %v", res.Fault)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("clean image flagged: %v", err)
	}
	heap := h.VM().Heap
	heap.Shadow().Poison(heap.Base()+4096, 64, 0xfd)
	if err := h.Verify(); err == nil {
		t.Fatal("shadow drift not caught by watchdog")
	}
	// The next restore rolls the damage back (it is on the dirty list).
	if err := h.Restore(); err != nil {
		t.Fatal(err)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("restore did not repair shadow drift: %v", err)
	}
}

// TestQuarantineDriftCaughtByWatchdog shrinks the quarantine behind the
// harness's back and expects Verify to notice the count mismatch.
func TestQuarantineDriftCaughtByWatchdog(t *testing.T) {
	h := newSanHarness(t, FullRestore())
	if res := h.RunOne([]byte("a")); res.Fault != nil {
		t.Fatalf("clean run faulted: %v", res.Fault)
	}
	heap := h.VM().Heap
	// Grow the quarantine without touching shadow state: free a fresh
	// allocation... which poisons shadow too, so instead truncate it.
	heap.RestoreQuarantine(nil)
	if heap.QuarantineLen() == 0 && h.GlobalSnapshotSize() >= 0 {
		// Only meaningful when init left something in quarantine; the
		// sanSrc init path does not free, so synthesize drift the other way:
		a, err := heap.Alloc(8)
		if err != nil {
			t.Fatal(err)
		}
		if err := heap.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Verify(); err == nil {
		t.Fatal("quarantine drift not caught by watchdog")
	}
}
