package harness

import (
	"errors"
	"testing"

	"closurex/internal/faultinject"
)

// The resilience layer branches on error classes with errors.Is rather than
// string matching; these tests pin the wrapping contract.
func TestRestoreFailureWrapsErrRestore(t *testing.T) {
	inj := faultinject.New(1)
	h := newFaultyHarness(t, inj)
	if res := h.RunOne([]byte("a")); res.Fault != nil {
		t.Fatalf("clean run faulted: %v", res.Fault)
	}
	if err := h.TakeRestoreError(); err != nil {
		t.Fatalf("clean run reported restore error: %v", err)
	}

	inj.FailAfter(faultinject.RestoreGlobals, 0, 1)
	h.RunOne([]byte("b"))
	err := h.TakeRestoreError()
	if err == nil {
		t.Fatal("injected restore failure not reported")
	}
	if !errors.Is(err, ErrRestore) {
		t.Fatalf("restore failure not errors.Is(ErrRestore): %v", err)
	}
	if errors.Is(err, ErrWatchdog) {
		t.Fatalf("restore failure claims to be a watchdog violation: %v", err)
	}
}

func TestWatchdogViolationWrapsErrWatchdog(t *testing.T) {
	inj := faultinject.New(1)
	h := newFaultyHarness(t, inj)
	h.RunOne([]byte("a"))
	if err := h.Verify(); err != nil {
		t.Fatalf("watchdog tripped on a healthy image: %v", err)
	}

	// A skipped global copy-back leaves the section polluted; Verify's
	// finding must carry the watchdog sentinel and only that sentinel.
	inj.FailAfter(faultinject.RestoreGlobals, 0, 1)
	h.RunOne([]byte("b"))
	h.TakeRestoreError() // drain; the watchdog is the subject here
	err := h.Verify()
	if err == nil {
		t.Fatal("watchdog missed the polluted section")
	}
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("watchdog violation not errors.Is(ErrWatchdog): %v", err)
	}
	if errors.Is(err, ErrRestore) {
		t.Fatalf("watchdog violation claims to be a restore failure: %v", err)
	}
}
