package harness

import (
	"bytes"
	"testing"

	"closurex/internal/ir"
	"closurex/internal/lower"
	"closurex/internal/passes"
	"closurex/internal/vm"
)

// statefulSrc mutates globals, leaks heap chunks and file handles, and
// exits on a magic byte — one of everything the harness must undo.
const statefulSrc = `
int runs;
int last_byte;
char scratch[32];

int main(void) {
	runs++;
	int f = fopen("/input", "r");
	if (!f) abort();
	int c = fgetc(f);
	last_byte = c;
	scratch[runs % 32] = (char)c;
	char *leak = (char*)malloc(64);
	leak[0] = (char)c;
	if (c == 'X') exit(9);     // leaks f and leak
	char *tmp = (char*)malloc(16);
	free(tmp);
	fclose(f);
	return runs;
}
`

func buildInstrumented(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := lower.Compile("t.c", src, vm.Builtins())
	if err != nil {
		t.Fatal(err)
	}
	pm := passes.NewManager(vm.Builtins())
	pm.Add(passes.ClosureXPipeline(true)...)
	pm.Add(passes.NewCoveragePass(1))
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func newHarness(t *testing.T, src string, opts Options) *Harness {
	t.Helper()
	m := buildInstrumented(t, src)
	v, err := vm.New(m, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(v, opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestGlobalsRestoredBetweenRuns(t *testing.T) {
	h := newHarness(t, statefulSrc, FullRestore())
	for i := 0; i < 5; i++ {
		res := h.RunOne([]byte("a"))
		if res.Fault != nil {
			t.Fatalf("run %d fault: %v", i, res.Fault)
		}
		// runs is restored to 0 before each run, so main returns 1 always.
		if res.Ret != 1 {
			t.Fatalf("run %d returned %d; global state leaked across runs", i, res.Ret)
		}
	}
}

func TestWithoutGlobalRestoreStateLeaks(t *testing.T) {
	opts := FullRestore()
	opts.RestoreGlobals = false
	h := newHarness(t, statefulSrc, opts)
	if res := h.RunOne([]byte("a")); res.Ret != 1 {
		t.Fatalf("first run = %d", res.Ret)
	}
	if res := h.RunOne([]byte("a")); res.Ret != 2 {
		t.Fatalf("second run = %d; expected stale-state increment", res.Ret)
	}
}

func TestHeapChunksReclaimed(t *testing.T) {
	h := newHarness(t, statefulSrc, FullRestore())
	for i := 0; i < 10; i++ {
		h.RunOne([]byte("a"))
		if n := h.VM().Heap.LiveChunks(); n != 0 {
			t.Fatalf("run %d: %d live chunks after restore", i, n)
		}
	}
	if h.Stats().ChunksFreed != 10 {
		t.Fatalf("ChunksFreed = %d, want 10 (one leak per run)", h.Stats().ChunksFreed)
	}
}

func TestFDsClosedOnExitPath(t *testing.T) {
	h := newHarness(t, statefulSrc, FullRestore())
	for i := 0; i < 200; i++ { // far beyond the FD limit
		res := h.RunOne([]byte("X"))
		if !res.Exited || res.ExitCode != 9 {
			t.Fatalf("run %d: %+v, want exit(9)", i, res)
		}
		if n := h.VM().FS.OpenCount(); n != 0 {
			t.Fatalf("run %d: %d open FDs after restore", i, n)
		}
	}
	st := h.Stats()
	if st.ExitsUnwound != 200 || st.FDsClosed != 200 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWithoutFileCleanupFDsExhaust(t *testing.T) {
	opts := FullRestore()
	opts.CloseFiles = false
	m := buildInstrumented(t, statefulSrc)
	v, err := vm.New(m, vm.Options{FDLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(v, opts)
	if err != nil {
		t.Fatal(err)
	}
	sawAbort := false
	for i := 0; i < 20; i++ {
		res := h.RunOne([]byte("X")) // exit path leaks the FD
		if res.Fault != nil && res.Fault.Kind == vm.FaultAbort {
			sawAbort = true
			break
		}
	}
	if !sawAbort {
		t.Fatal("FD exhaustion never produced the false crash")
	}
}

func TestSnapshotMatchesFreshAfterManyRuns(t *testing.T) {
	// Dataflow-equivalence style check: state after N polluted iterations +
	// restore equals the state a brand-new harness starts from.
	h := newHarness(t, statefulSrc, FullRestore())
	fresh, ok := h.VM().SnapshotSection(ir.SectionClosure)
	if !ok {
		t.Fatal("no closure section")
	}
	inputs := [][]byte{[]byte("a"), []byte("X"), []byte("zz"), {0}, []byte("qqq")}
	for i := 0; i < 100; i++ {
		h.RunOne(inputs[i%len(inputs)])
	}
	after, _ := h.VM().SnapshotSection(ir.SectionClosure)
	if !bytes.Equal(fresh, after) {
		t.Fatal("closure section drifted despite restoration")
	}
}

func TestDeferredInitRunsOnceAndPersists(t *testing.T) {
	src := `
int table[4];
int inits;
void closurex_init(void) {
	inits++;
	for (int i = 0; i < 4; i++) table[i] = (i + 1) * 10;
}
int main(void) {
	closurex_init();
	return table[3] + inits;
}
`
	h := newHarness(t, src, FullRestore())
	// DeferInitPass removed the call from main; the harness ran init once.
	// The snapshot was taken after init, so table persists across runs.
	for i := 0; i < 3; i++ {
		res := h.RunOne(nil)
		if res.Fault != nil {
			t.Fatal(res.Fault)
		}
		if res.Ret != 41 {
			t.Fatalf("run %d = %d, want 41 (table[3]=40 + inits=1)", i, res.Ret)
		}
	}
}

func TestInitFDRewoundNotClosed(t *testing.T) {
	src := `
int cfg_first;
void closurex_init(void) {
	int f = fopen("/config", "r");
	if (!f) abort();
	cfg_first = fgetc(f);
	// deliberately left open: an initialization-time handle
}
int cfg_fd_probe(void) {
	return 0;
}
int main(void) {
	return cfg_first;
}
`
	m := buildInstrumented(t, src)
	v, err := vm.New(m, vm.Options{Files: map[string][]byte{"/config": []byte("C")}})
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(v, FullRestore())
	if err != nil {
		t.Fatal(err)
	}
	if got := v.FS.OpenCount(); got != 1 {
		t.Fatalf("init FD count = %d", got)
	}
	for i := 0; i < 5; i++ {
		res := h.RunOne(nil)
		if res.Fault != nil || res.Ret != 'C' {
			t.Fatalf("run %d: ret=%d fault=%v", i, res.Ret, res.Fault)
		}
		if got := v.FS.OpenCount(); got != 1 {
			t.Fatalf("init FD closed: count = %d", got)
		}
	}
	if h.Stats().FDsRewound != 5 {
		t.Fatalf("FDsRewound = %d", h.Stats().FDsRewound)
	}
}

func TestHarnessRequiresInstrumentedModule(t *testing.T) {
	m, err := lower.Compile("t.c", "int main(void) { return 0; }", vm.Builtins())
	if err != nil {
		t.Fatal(err)
	}
	v, _ := vm.New(m, vm.Options{})
	if _, err := New(v, FullRestore()); err == nil {
		t.Fatal("harness accepted un-renamed module")
	}
}

func TestGlobalSnapshotSizeReported(t *testing.T) {
	h := newHarness(t, statefulSrc, FullRestore())
	// runs(8) + last_byte(8) + scratch(32) = 48, padded per layout rules.
	if h.GlobalSnapshotSize() < 48 {
		t.Fatalf("snapshot size = %d, want >= 48", h.GlobalSnapshotSize())
	}
	if h.Stats().GlobalBytes != 0 {
		t.Fatal("GlobalBytes counted before any run")
	}
	h.RunOne(nil)
	if h.Stats().GlobalBytes != int64(h.GlobalSnapshotSize()) {
		t.Fatalf("GlobalBytes = %d", h.Stats().GlobalBytes)
	}
}
