package harness

import (
	"bytes"
	"testing"
	"testing/quick"

	"closurex/internal/ir"
	"closurex/internal/vm"
)

// Property tests: under arbitrary input sequences, the harness's
// restoration invariants hold after every iteration.

// chaoticSrc reacts to input bytes with every kind of state mutation the
// harness must undo: global writes, chunk leaks, FD leaks, exits.
const chaoticSrc = `
int counter;
int mode;
char book[64];

int main(void) {
	counter++;
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	char *buf = (char*)malloc(size + 1);
	if (!buf) exit(1);
	fread(buf, 1, size, f);
	for (int i = 0; i < size; i++) {
		char c = buf[i];
		book[c % 64] = c;
		if (c == 'M') mode = i;
		if (c == 'L') {
			char *leak = (char*)malloc((c % 32) + 1);
			leak[0] = c;
		}
		if (c == 'F') {
			fopen("/input", "r");   // leaked handle
		}
		if (c == 'E') {
			exit(i);                // leaks buf and f (and any leaks above)
		}
		if (c == 'G') {
			char *tmp = (char*)malloc(8);
			free(tmp);
		}
	}
	free(buf);
	fclose(f);
	return counter;
}
`

func TestHarnessInvariantsUnderRandomSequences(t *testing.T) {
	h := newHarness(t, chaoticSrc, FullRestore())
	v := h.VM()
	pristine, ok := v.SnapshotSection(ir.SectionClosure)
	if !ok {
		t.Fatal("no closure section")
	}

	f := func(inputs [][]byte) bool {
		for _, in := range inputs {
			if len(in) > 128 {
				in = in[:128]
			}
			res := h.RunOne(in)
			if res.Fault != nil {
				// chaoticSrc has no reachable faults; a fault means the
				// harness leaked state into the target's semantics.
				return false
			}
			// Invariant 1: the target believes it is running for the
			// first time (counter restored before it increments).
			if !res.Exited && res.Ret != 1 {
				return false
			}
			// Invariant 2: no chunks or descriptors survive.
			if v.Heap.LiveChunks() != 0 || v.FS.OpenCount() != 0 {
				return false
			}
			// Invariant 3: the global section is byte-identical.
			sec, _ := v.SnapshotSection(ir.SectionClosure)
			if !bytes.Equal(sec, pristine) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHarnessStatsMonotonic(t *testing.T) {
	h := newHarness(t, chaoticSrc, FullRestore())
	var prev Stats
	for i := 0; i < 20; i++ {
		h.RunOne([]byte{'L', 'F', 'M'})
		st := h.Stats()
		if st.Iterations != prev.Iterations+1 {
			t.Fatalf("iterations not monotonic: %+v", st)
		}
		if st.ChunksFreed < prev.ChunksFreed || st.FDsClosed < prev.FDsClosed ||
			st.GlobalBytes < prev.GlobalBytes {
			t.Fatalf("counters regressed: %+v -> %+v", prev, st)
		}
		prev = st
	}
	if prev.ChunksFreed != 20 || prev.FDsClosed != 20 {
		t.Fatalf("per-iteration leak accounting: %+v", prev)
	}
}

func TestHarnessIdempotentRestore(t *testing.T) {
	h := newHarness(t, chaoticSrc, FullRestore())
	v := h.VM()
	h.RunOne([]byte{'L', 'M'})
	first, _ := v.SnapshotSection(ir.SectionClosure)
	// Restoring again without an intervening run must be a no-op.
	h.Restore()
	h.Restore()
	second, _ := v.SnapshotSection(ir.SectionClosure)
	if !bytes.Equal(first, second) {
		t.Fatal("double restore changed state")
	}
	if v.Heap.LiveChunks() != 0 || v.FS.OpenCount() != 0 {
		t.Fatal("double restore leaked")
	}
}

func TestHarnessSurvivesCrashInputs(t *testing.T) {
	// A crashing target leaves arbitrary state mid-execution; the harness
	// restore must still bring everything back (the mechanism layer
	// additionally respawns, but the harness alone must cope).
	src := `
int depth;
char scratch[32];
int main(void) {
	depth++;
	int f = fopen("/input", "r");
	if (!f) abort();
	int c = fgetc(f);
	scratch[depth % 32] = (char)c;
	char *p = (char*)malloc(16);
	p[0] = (char)c;
	if (c == 'X') {
		int *np = 0;
		return *np;       // crash with p leaked, f open
	}
	free(p);
	fclose(f);
	return depth;
}
`
	h := newHarness(t, src, FullRestore())
	v := h.VM()
	pristine, _ := v.SnapshotSection(ir.SectionClosure)
	for i := 0; i < 10; i++ {
		res := h.RunOne([]byte("X"))
		if res.Fault == nil || res.Fault.Kind != vm.FaultNullDeref {
			t.Fatalf("iter %d: %+v", i, res)
		}
		if v.Heap.LiveChunks() != 0 || v.FS.OpenCount() != 0 {
			t.Fatalf("iter %d: crash path leaked through restore", i)
		}
		sec, _ := v.SnapshotSection(ir.SectionClosure)
		if !bytes.Equal(sec, pristine) {
			t.Fatalf("iter %d: globals dirty after crash restore", i)
		}
		// And a benign run still behaves like the first ever.
		if res := h.RunOne([]byte("a")); res.Ret != 1 {
			t.Fatalf("iter %d: post-crash run = %d", i, res.Ret)
		}
	}
}
