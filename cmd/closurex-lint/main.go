// Command closurex-lint runs the static correctness gate over benchmark
// targets or a user MinC file: the IR verifier (every block terminated,
// branch targets and registers in range, definite assignment before use,
// callees and globals resolvable) followed by the restore-completeness
// lints (CLX001…) that prove the ClosureX pipeline's output is restartable
// — no raw malloc/calloc/realloc/free/fopen/fclose/exit call sites, every
// writable global in closure_global_section, main renamed, collision-free
// coverage probes.
//
// With -sanitize-report the module is built with the sanitizer pass and
// static check-elision analysis armed, and a per-function table of checked
// vs. elided memory accesses is printed after the lint verdict (the
// CLX111-113 sanitizer verifier rules run as part of the gate).
//
// With -interproc-report the module is built with InterprocPass armed and
// a per-function table of the interprocedural mod/ref + lifetime results
// is printed: global-write scope, may-exit, and heap/file sites elided vs.
// tracked (the CLX114-118 elision audit rules run as part of the gate).
//
// With -harness-report the harness-quality audit runs after the gate:
// static reachability from target_main (CLX119 dead harness surface),
// coverage-geometry analysis of the probe assignment (CLX120 saturation /
// collision displacement), and input-dataflow constant harvesting that
// cross-checks the target's mutation dictionary (CLX121 dead tokens) and
// derives the auto-dictionary. A deterministic per-target score card is
// printed, and -harness-json writes the cards as a byte-stable JSON array.
//
// With -transval the compiled closure-chain tier's translation validation
// runs after the gate: internal/vm/compile is asked for its per-function
// certificates and analysis/transval independently re-derives every claim
// from the IR — branch-target map vs. block concatenation, fusion-pattern
// legality with liveness proofs for elided intermediates, folded-constant
// re-evaluation, callee bindings, and instruction-exact budget-table
// recounts (CLX123-127). -transval-json writes the transval findings as a
// byte-stable JSON array (empty array when everything certifies).
//
// With -synth the static harness synthesizer runs after the gate: exported
// non-entry functions are ranked by the audit's reachability/taint facts,
// a type- and fact-driven argument plan is derived per signature, and a
// dispatching MinC harness is emitted and certified through the same
// verifier+lint path (CLX128 unsynthesizable signature, CLX129 uncovered
// surface, CLX130 certification failure, CLX131 plan shadowed by the
// manual harness). -synth-json writes the per-target synthesis reports as
// a byte-stable JSON array. When -harness-report is also active, certified
// synthesized harnesses are scored alongside the manual ones (as
// "<target>+synth" cards, same surface/geometry/dictionary weights).
//
// With -format json, findings are emitted as one machine-readable JSON
// array over all checked modules — schema analysis.JSONDiagnostic (file,
// function, code, severity, pass, block, instr, line, message), sorted by
// (file, function, code, position) so the bytes are stable across runs.
//
// Usage:
//
//	closurex-lint -target all
//	closurex-lint -file prog.c
//	closurex-lint -target gpmf-parser -variant baseline
//	closurex-lint -target all -sanitize-report
//	closurex-lint -target all -interproc-report
//	closurex-lint -target all -harness-report
//	closurex-lint -target all -harness-json cards.json
//	closurex-lint -target all -transval
//	closurex-lint -target all -transval-json transval.json
//	closurex-lint -target all -synth
//	closurex-lint -target all -synth-json synth.json
//	closurex-lint -target all -format json
//	closurex-lint -target all -strict
//	closurex-lint -catalog
//
// Exit status:
//
//	0  every checked module is clean (warnings tolerated unless -strict)
//	1  a module failed to build, fired an error-severity diagnostic, or —
//	   under -strict — fired any warning-severity diagnostic
//	2  usage errors (unknown target, unreadable file, bad variant)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"closurex/internal/analysis"
	"closurex/internal/analysis/harnessaudit"
	"closurex/internal/analysis/interproc"
	"closurex/internal/analysis/sanitize"
	"closurex/internal/analysis/synth"
	"closurex/internal/analysis/transval"
	"closurex/internal/core"
	"closurex/internal/targets"
	"closurex/internal/vm/compile"
)

func main() {
	var (
		targetName = flag.String("target", "", "benchmark name or 'all'")
		file       = flag.String("file", "", "MinC source file to lint")
		variant    = flag.String("variant", "closurex", "pipeline to lint: pristine | baseline | closurex | closurex+deferinit")
		catalog    = flag.Bool("catalog", false, "print the lint catalog and exit")
		quiet      = flag.Bool("q", false, "suppress per-module OK lines")
		strict     = flag.Bool("strict", false, "exit non-zero on warning-severity diagnostics too")
		sanReport  = flag.Bool("sanitize-report", false, "instrument with the sanitizer and print per-function check/elision counts")
		ipReport   = flag.Bool("interproc-report", false, "instrument with InterprocPass and print the per-function restore-elision table")
		haReport   = flag.Bool("harness-report", false, "run the harness-quality audit (CLX119-121) and print per-target score cards")
		haJSON     = flag.String("harness-json", "", "write the harness score cards as a JSON array to this path (implies -harness-report)")
		tvReport   = flag.Bool("transval", false, "run translation validation of the compiled tier (CLX123-127) as part of the gate")
		tvJSON     = flag.String("transval-json", "", "write the transval findings as a byte-stable JSON array to this path (implies -transval)")
		syReport   = flag.Bool("synth", false, "run the static harness synthesizer (CLX128-131) and print per-target synthesis summaries")
		syJSON     = flag.String("synth-json", "", "write the synthesis reports as a byte-stable JSON array to this path (implies -synth)")
		format     = flag.String("format", "text", "output format: text | json")
	)
	flag.Parse()
	if *format != "text" && *format != "json" {
		fatalf(2, "unknown -format %q (want text or json)", *format)
	}
	jsonOut := *format == "json"

	if *catalog {
		printCatalog()
		return
	}

	v, err := parseVariant(*variant)
	if err != nil {
		fatalf(2, "%v", err)
	}

	audit := *haReport || *haJSON != ""
	tv := *tvReport || *tvJSON != ""
	doSynth := *syReport || *syJSON != ""

	type job struct {
		name, file, src string
		dict            [][]byte
	}
	var jobs []job
	switch {
	case *targetName == "all":
		for _, t := range targets.All() {
			jobs = append(jobs, job{t.Name, t.Short + ".c", t.Source, dictBytes(t.Dict)})
		}
	case *targetName != "":
		t := targets.Get(*targetName)
		if t == nil {
			fatalf(2, "unknown target %q (have %v)", *targetName, targets.Names())
		}
		jobs = append(jobs, job{t.Name, t.Short + ".c", t.Source, dictBytes(t.Dict)})
	case *file != "":
		data, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatalf(2, "%v", rerr)
		}
		jobs = append(jobs, job{*file, *file, string(data), nil})
	default:
		flag.Usage()
		os.Exit(2)
	}

	cfg := core.BuildConfig{Variant: v, Interproc: *ipReport}
	if *sanReport {
		cfg.Sanitize = core.SanitizeElide
	}

	failures, warnings := 0, 0
	all := analysis.Diags{}
	tvAll := analysis.Diags{}
	var cards []*harnessaudit.Card
	var reports []*synth.Report
	for _, j := range jobs {
		mod, berr := core.BuildWith(j.file, j.src, cfg)
		if berr != nil {
			fmt.Fprintf(os.Stderr, "closurex-lint: %s: build: %v\n", j.name, berr)
			failures++
			continue
		}
		ds := core.CheckModule(mod, v)
		var card *harnessaudit.Card
		if audit {
			c, ads := harnessaudit.Audit(j.name, mod, harnessaudit.Options{Dict: j.dict})
			card, cards = c, append(cards, c)
			ds = append(ds, ads...)
			ds.Sort()
		}
		var tvStats transval.Stats
		if tv {
			tds := transval.Check(mod)
			tvAll.Add(j.name, tds)
			ds = append(ds, tds...)
			ds.Sort()
			if len(tds) == 0 {
				if cert, cerr := compile.CertFor(mod); cerr == nil {
					tvStats = transval.Summarize(cert)
				}
			}
		}
		var sh *synth.Harness
		var synthCard *harnessaudit.Card
		if doSynth {
			h, serr := synth.Synthesize(j.name, j.file, j.src, synth.Options{})
			if serr != nil {
				fmt.Fprintf(os.Stderr, "closurex-lint: %s: synth: %v\n", j.name, serr)
				failures++
			} else {
				sh = h
				reports = append(reports, h.Report)
				ds = append(ds, h.Diags...)
				ds.Sort()
				// Certified synthesized harnesses are scored alongside the
				// manual ones (same surface/geometry/dictionary weights).
				if audit && h.Module != nil {
					c, _ := harnessaudit.Audit(j.name+"+synth", h.Module, harnessaudit.Options{Dict: j.dict})
					synthCard, cards = c, append(cards, c)
				}
			}
		}
		warnings += countWarnings(ds)
		all.Add(j.name, ds)
		if ds.HasErrors() {
			failures++
		}
		if jsonOut {
			continue // findings print once, flattened, after the loop
		}
		if ds.HasErrors() {
			fmt.Printf("FAIL  %s (%d error(s))\n", j.name, ds.Errors())
			for _, d := range ds {
				fmt.Printf("      %s\n", d)
			}
			continue
		}
		for _, d := range ds {
			fmt.Printf("      %s\n", d) // non-error findings, if any
		}
		if !*quiet {
			fmt.Printf("OK    %s (verifier + %d lints clean)\n", j.name, len(analysis.LintCatalog()))
		}
		if tv && !*quiet {
			fmt.Printf("      transval: certified %d function(s), %d closures, %d fused, %d elided, %d runs\n",
				tvStats.Funcs, tvStats.PCs, tvStats.Fused, tvStats.Elided, tvStats.Runs)
		}
		if card != nil {
			fmt.Print(card.Format())
		}
		if sh != nil && !*quiet {
			fmt.Printf("      synth: %d arm(s), hdr %dB, certified=%v (%d unsynthesizable, %d uncovered, %d shadowed)\n",
				len(sh.Report.Arms), sh.Report.HdrBytes, sh.Report.Certified,
				len(sh.Report.Unsynthesizable), len(sh.Report.Uncovered), len(sh.Report.Shadowed))
		}
		if synthCard != nil {
			fmt.Print(synthCard.Format())
		}
		if *sanReport {
			rep := sanitize.ReportModule(mod)
			fmt.Printf("sanitizer check elision for %s:\n%s", j.name, rep.Format())
		}
		if *ipReport {
			rep := interproc.ReportModule(mod)
			fmt.Printf("interprocedural restore elision for %s:\n%s", j.name, rep.Format())
		}
	}
	if jsonOut {
		b, jerr := all.Flatten().JSON()
		if jerr != nil {
			fatalf(2, "encode: %v", jerr)
		}
		os.Stdout.Write(b)
	}
	if *tvJSON != "" {
		b, jerr := tvAll.Flatten().JSON()
		if jerr != nil {
			fatalf(2, "encode transval findings: %v", jerr)
		}
		if werr := os.WriteFile(*tvJSON, b, 0o644); werr != nil {
			fatalf(2, "%v", werr)
		}
	}
	if *syJSON != "" {
		b, jerr := synth.ReportsJSON(reports)
		if jerr != nil {
			fatalf(2, "encode synthesis reports: %v", jerr)
		}
		if werr := os.WriteFile(*syJSON, b, 0o644); werr != nil {
			fatalf(2, "%v", werr)
		}
	}
	if *haJSON != "" {
		b, jerr := harnessaudit.CardsJSON(cards)
		if jerr != nil {
			fatalf(2, "encode score cards: %v", jerr)
		}
		if werr := os.WriteFile(*haJSON, b, 0o644); werr != nil {
			fatalf(2, "%v", werr)
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
	if *strict && warnings > 0 {
		fmt.Fprintf(os.Stderr, "closurex-lint: -strict: %d warning(s)\n", warnings)
		os.Exit(1)
	}
	if !*quiet && !jsonOut {
		fmt.Printf("\n%d module(s) statically restartable: every restore-completeness invariant holds\n", len(jobs))
	}
}

func countWarnings(ds analysis.Diagnostics) int {
	n := 0
	for i := range ds {
		if ds[i].Sev == analysis.SevWarn {
			n++
		}
	}
	return n
}

func parseVariant(s string) (core.Variant, error) {
	for _, v := range []core.Variant{core.Pristine, core.Baseline, core.ClosureX, core.ClosureXDeferInit} {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}

func printCatalog() {
	cat := analysis.Catalog()
	ids := make([]string, 0, len(cat))
	for id := range cat {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Println("ClosureX diagnostic catalog (lints CLX001+, verifier CLX101+, audits CLX114+):")
	for _, id := range ids {
		fmt.Printf("  %s  %s\n", id, cat[id])
	}
}

func dictBytes(dict []string) [][]byte {
	out := make([][]byte, 0, len(dict))
	for _, s := range dict {
		out = append(out, []byte(s))
	}
	return out
}

func fatalf(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "closurex-lint: "+format+"\n", args...)
	os.Exit(code)
}
