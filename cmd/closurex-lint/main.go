// Command closurex-lint runs the static correctness gate over benchmark
// targets or a user MinC file: the IR verifier (every block terminated,
// branch targets and registers in range, definite assignment before use,
// callees and globals resolvable) followed by the restore-completeness
// lints (CLX001…) that prove the ClosureX pipeline's output is restartable
// — no raw malloc/calloc/realloc/free/fopen/fclose/exit call sites, every
// writable global in closure_global_section, main renamed, collision-free
// coverage probes.
//
// With -sanitize-report the module is built with the sanitizer pass and
// static check-elision analysis armed, and a per-function table of checked
// vs. elided memory accesses is printed after the lint verdict (the
// CLX111-113 sanitizer verifier rules run as part of the gate).
//
// With -interproc-report the module is built with InterprocPass armed and
// a per-function table of the interprocedural mod/ref + lifetime results
// is printed: global-write scope, may-exit, and heap/file sites elided vs.
// tracked (the CLX114-118 elision audit rules run as part of the gate).
//
// With -format json, findings are emitted as one machine-readable JSON
// array over all checked modules — schema analysis.JSONDiagnostic (file,
// function, code, severity, pass, block, instr, line, message), sorted by
// (file, function, code, position) so the bytes are stable across runs.
//
// Usage:
//
//	closurex-lint -target all
//	closurex-lint -file prog.c
//	closurex-lint -target gpmf-parser -variant baseline
//	closurex-lint -target all -sanitize-report
//	closurex-lint -target all -interproc-report
//	closurex-lint -target all -format json
//	closurex-lint -target all -strict
//	closurex-lint -catalog
//
// Exit status:
//
//	0  every checked module is clean (warnings tolerated unless -strict)
//	1  a module failed to build, fired an error-severity diagnostic, or —
//	   under -strict — fired any warning-severity diagnostic
//	2  usage errors (unknown target, unreadable file, bad variant)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"closurex/internal/analysis"
	"closurex/internal/analysis/interproc"
	"closurex/internal/analysis/sanitize"
	"closurex/internal/core"
	"closurex/internal/targets"
)

func main() {
	var (
		targetName = flag.String("target", "", "benchmark name or 'all'")
		file       = flag.String("file", "", "MinC source file to lint")
		variant    = flag.String("variant", "closurex", "pipeline to lint: pristine | baseline | closurex | closurex+deferinit")
		catalog    = flag.Bool("catalog", false, "print the lint catalog and exit")
		quiet      = flag.Bool("q", false, "suppress per-module OK lines")
		strict     = flag.Bool("strict", false, "exit non-zero on warning-severity diagnostics too")
		sanReport  = flag.Bool("sanitize-report", false, "instrument with the sanitizer and print per-function check/elision counts")
		ipReport   = flag.Bool("interproc-report", false, "instrument with InterprocPass and print the per-function restore-elision table")
		format     = flag.String("format", "text", "output format: text | json")
	)
	flag.Parse()
	if *format != "text" && *format != "json" {
		fatalf(2, "unknown -format %q (want text or json)", *format)
	}
	jsonOut := *format == "json"

	if *catalog {
		printCatalog()
		return
	}

	v, err := parseVariant(*variant)
	if err != nil {
		fatalf(2, "%v", err)
	}

	type job struct{ name, file, src string }
	var jobs []job
	switch {
	case *targetName == "all":
		for _, t := range targets.All() {
			jobs = append(jobs, job{t.Name, t.Short + ".c", t.Source})
		}
	case *targetName != "":
		t := targets.Get(*targetName)
		if t == nil {
			fatalf(2, "unknown target %q (have %v)", *targetName, targets.Names())
		}
		jobs = append(jobs, job{t.Name, t.Short + ".c", t.Source})
	case *file != "":
		data, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatalf(2, "%v", rerr)
		}
		jobs = append(jobs, job{*file, *file, string(data)})
	default:
		flag.Usage()
		os.Exit(2)
	}

	cfg := core.BuildConfig{Variant: v, Interproc: *ipReport}
	if *sanReport {
		cfg.Sanitize = core.SanitizeElide
	}

	failures, warnings := 0, 0
	all := analysis.Diags{}
	for _, j := range jobs {
		mod, berr := core.BuildWith(j.file, j.src, cfg)
		if berr != nil {
			fmt.Fprintf(os.Stderr, "closurex-lint: %s: build: %v\n", j.name, berr)
			failures++
			continue
		}
		ds := core.CheckModule(mod, v)
		warnings += countWarnings(ds)
		all.Add(j.name, ds)
		if ds.HasErrors() {
			failures++
		}
		if jsonOut {
			continue // findings print once, flattened, after the loop
		}
		if ds.HasErrors() {
			fmt.Printf("FAIL  %s (%d error(s))\n", j.name, ds.Errors())
			for _, d := range ds {
				fmt.Printf("      %s\n", d)
			}
			continue
		}
		for _, d := range ds {
			fmt.Printf("      %s\n", d) // non-error findings, if any
		}
		if !*quiet {
			fmt.Printf("OK    %s (verifier + %d lints clean)\n", j.name, len(analysis.LintCatalog()))
		}
		if *sanReport {
			rep := sanitize.ReportModule(mod)
			fmt.Printf("sanitizer check elision for %s:\n%s", j.name, rep.Format())
		}
		if *ipReport {
			rep := interproc.ReportModule(mod)
			fmt.Printf("interprocedural restore elision for %s:\n%s", j.name, rep.Format())
		}
	}
	if jsonOut {
		b, jerr := all.Flatten().JSON()
		if jerr != nil {
			fatalf(2, "encode: %v", jerr)
		}
		os.Stdout.Write(b)
	}
	if failures > 0 {
		os.Exit(1)
	}
	if *strict && warnings > 0 {
		fmt.Fprintf(os.Stderr, "closurex-lint: -strict: %d warning(s)\n", warnings)
		os.Exit(1)
	}
	if !*quiet && !jsonOut {
		fmt.Printf("\n%d module(s) statically restartable: every restore-completeness invariant holds\n", len(jobs))
	}
}

func countWarnings(ds analysis.Diagnostics) int {
	n := 0
	for i := range ds {
		if ds[i].Sev == analysis.SevWarn {
			n++
		}
	}
	return n
}

func parseVariant(s string) (core.Variant, error) {
	for _, v := range []core.Variant{core.Pristine, core.Baseline, core.ClosureX, core.ClosureXDeferInit} {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}

func printCatalog() {
	cat := analysis.LintCatalog()
	ids := make([]string, 0, len(cat))
	for id := range cat {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Println("Restore-completeness lint catalog (verifier IDs are CLX101+):")
	for _, id := range ids {
		fmt.Printf("  %s  %s\n", id, cat[id])
	}
}

func fatalf(code int, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "closurex-lint: "+format+"\n", args...)
	os.Exit(code)
}
