// Command closurex-bench regenerates the paper's evaluation artifacts at a
// configurable (scaled) budget: Tables 3-7, the execution-mechanism
// spectrum figure, the stale-state pathology demonstration, and the
// restoration ablations.
//
// Usage:
//
//	closurex-bench -table 5 -duration 2s -trials 5
//	closurex-bench -table all -targets gpmf-parser,libbpf
//	closurex-bench -figure spectrum
//	closurex-bench -ablation
//	closurex-bench -sanitizer-overhead -sanitizer-json BENCH_sanitizer.json
//	closurex-bench -restore-elision -interproc-json BENCH_interproc.json
//	closurex-bench -dict-gain -dict-json BENCH_harness.json
//	closurex-bench -synth-gain -synth-json BENCH_synth.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"closurex/internal/experiments"
)

func main() {
	var (
		table    = flag.String("table", "", "3 | 4 | 5 | 6 | 7 | all")
		figure   = flag.String("figure", "", "spectrum | stale-state | sections")
		ablation = flag.Bool("ablation", false, "run the restoration ablations")
		duration = flag.Duration("duration", 2*time.Second, "per-trial fuzzing time (paper: 24h)")
		trials   = flag.Int("trials", 5, "trials per configuration (paper: 5)")
		tgts     = flag.String("targets", "", "comma-separated target subset (default: all ten)")
		seed     = flag.Uint64("seed", 0x5eed, "base RNG seed")
		pages    = flag.Int("image-pages", 512, "image size for the spectrum figure")
	)
	var (
		scaling      = flag.Bool("parallel-scaling", false, "run the parallel-scaling sweep (jobs = 1, 2, 4, GOMAXPROCS)")
		scalingTgt   = flag.String("parallel-target", "gpmf-parser", "target for the scaling sweep")
		scalingExecs = flag.Int64("parallel-execs", 50000, "aggregate executions per scaling point")
		parallelJSON = flag.String("parallel-json", "", "also write the scaling report to this JSON file (e.g. BENCH_parallel.json)")
	)
	var (
		compSpeedup = flag.Bool("compile-speedup", false, "run the compiled-tier speedup sweep (interp vs compiled backend on every target, with inline identity checks)")
		compExecs   = flag.Int64("compile-execs", 20000, "executions per backend per target")
		compJSON    = flag.String("compile-json", "", "also write the compiled-tier report to this JSON file (e.g. BENCH_compile.json)")
		tvRun       = flag.Bool("transval", false, "run the translation-validation sweep: certify every target's compiled program against the IR and report per-target certification time")
		tvJSON      = flag.String("transval-json", "", "merge the certification report into this BENCH_compile.json (speedup rows preserved)")
	)
	var (
		sanOverhead = flag.Bool("sanitizer-overhead", false, "run the sanitizer-overhead sweep (modes off, on, on+elide)")
		sanTgt      = flag.String("sanitizer-target", "gpmf-parser", "target for the sanitizer sweep")
		sanExecs    = flag.Int64("sanitizer-execs", 20000, "executions per sanitize mode")
		sanJSON     = flag.String("sanitizer-json", "", "also write the sanitizer report to this JSON file (e.g. BENCH_sanitizer.json)")
	)
	var (
		elision      = flag.Bool("restore-elision", false, "run the interprocedural restore-elision sweep over every target (elision off vs on)")
		elisionExecs = flag.Int64("interproc-execs", 10000, "executions per elision point")
		elisionJSON  = flag.String("interproc-json", "", "also write the elision report to this JSON file (e.g. BENCH_interproc.json)")
	)
	var (
		dictGain   = flag.Bool("dict-gain", false, "run the harness-audit sweep over every target (auto-dictionary off vs on)")
		dictExecs  = flag.Int64("dict-execs", 10000, "executions per auto-dictionary point")
		dictJSON   = flag.String("dict-json", "", "also write the harness report to this JSON file (e.g. BENCH_harness.json)")
		synthGain  = flag.Bool("synth-gain", false, "run the synthesized-harness sweep: manual vs manual+synthesized coverage per target")
		synthExecs = flag.Int64("synth-execs", 10000, "executions per campaign in the synthesized-harness sweep")
		synthJSON  = flag.String("synth-json", "", "also write the synthesis report to this JSON file (e.g. BENCH_synth.json)")
	)
	var (
		chaos      = flag.Bool("chaos", false, "run the fault-injection matrix over the parallel campaign (shard kill, restore corruption, corpus delay/drop)")
		chaosTgt   = flag.String("chaos-target", "gpmf-parser", "target for the chaos matrix")
		chaosJobs  = flag.Int("chaos-jobs", 4, "shard count for the chaos matrix (min 3)")
		chaosExecs = flag.Int64("chaos-execs", 30000, "aggregate executions per chaos scenario")
		chaosJSON  = flag.String("chaos-json", "", "also write the chaos report to this JSON file (e.g. BENCH_chaos.json)")
	)
	flag.Parse()
	if *parallelJSON != "" {
		*scaling = true
	}
	if *compJSON != "" {
		*compSpeedup = true
	}
	if *tvJSON != "" {
		*tvRun = true
	}
	if *sanJSON != "" {
		*sanOverhead = true
	}
	if *elisionJSON != "" {
		*elision = true
	}
	if *dictJSON != "" {
		*dictGain = true
	}
	if *synthJSON != "" {
		*synthGain = true
	}
	if *chaosJSON != "" {
		*chaos = true
	}
	if *table == "" && *figure == "" && !*ablation && !*scaling && !*compSpeedup && !*tvRun && !*sanOverhead && !*elision && !*dictGain && !*synthGain && !*chaos {
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.Config{
		TrialDuration: *duration,
		Trials:        *trials,
		BaseSeed:      *seed,
	}
	if *tgts != "" {
		cfg.Targets = strings.Split(*tgts, ",")
	}

	switch *table {
	case "":
	case "3":
		fmt.Print(experiments.Table3())
	case "4":
		fmt.Print(experiments.Table4())
	case "5", "6", "7", "all":
		if *table == "all" {
			fmt.Print(experiments.Table3())
			fmt.Println()
			fmt.Print(experiments.Table4())
			fmt.Println()
		}
		fmt.Printf("running evaluation: %d trials x %v per cell, 2 mechanisms...\n\n",
			cfg.Trials, cfg.TrialDuration)
		eval, err := experiments.RunEvaluation(cfg)
		if err != nil {
			fatalf("%v", err)
		}
		if *table == "5" || *table == "all" {
			fmt.Print(experiments.FormatTable5(experiments.Table5(eval)))
			fmt.Println()
		}
		if *table == "6" || *table == "all" {
			fmt.Print(experiments.FormatTable6(experiments.Table6(eval)))
			fmt.Println()
		}
		if *table == "7" || *table == "all" {
			fmt.Print(experiments.FormatTable7(experiments.Table7(eval)))
		}
	default:
		fatalf("unknown table %q", *table)
	}

	switch *figure {
	case "":
	case "spectrum":
		rows, err := experiments.RunSpectrum(*pages, 400)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(experiments.FormatSpectrum(rows, *pages))
	case "stale-state":
		rep, err := experiments.RunStaleStateDemo()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println("Stale-state pathology demonstration (gpmf-parser):")
		fmt.Println(" ", rep)
		if rep.Correct() {
			fmt.Println("  => naive persistent fuzzing misses real crashes and reports false ones; ClosureX does neither")
		}
	case "reproducibility":
		fmt.Println("Crash reproducibility: campaign crashes replayed in a fresh process")
		for _, tgt := range cfg.Targets {
			rep, err := experiments.RunReproducibility(tgt, *duration, *seed)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Println(" ", rep)
		}
	case "sections":
		for _, tgt := range cfg.Targets {
			out, err := experiments.SectionTransformation(tgt)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Println(out)
		}
	default:
		fatalf("unknown figure %q", *figure)
	}

	if *scaling {
		rep, err := experiments.RunParallelScaling(*scalingTgt, nil, *scalingExecs, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(experiments.FormatScaling(rep))
		if *parallelJSON != "" {
			if err := experiments.WriteScalingJSON(*parallelJSON, rep); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("scaling report written to %s\n", *parallelJSON)
		}
	}

	if *compSpeedup {
		rep, err := experiments.RunCompileSpeedup(*compExecs, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(experiments.FormatCompile(rep))
		if *compJSON != "" {
			if err := experiments.WriteCompileJSON(*compJSON, rep); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("compiled-tier report written to %s\n", *compJSON)
		}
		if !rep.AllIdentical {
			fatalf("compiled tier diverged from the interpreter")
		}
	}

	if *tvRun {
		rep, err := experiments.RunTransval()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(experiments.FormatTransval(rep))
		if *tvJSON != "" {
			if err := experiments.AttachTransvalJSON(*tvJSON, rep); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("certification report merged into %s\n", *tvJSON)
		}
		// Tripwire: an uncertifiable target means the compiled tier cannot
		// be trusted for any result in the benchmark suite.
		if !rep.AllCertified {
			fatalf("translation validation failed: a target's compiled program did not certify")
		}
	}

	if *chaos {
		rep, err := experiments.RunChaosMatrix(*chaosTgt, *chaosJobs, *chaosExecs, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(experiments.FormatChaos(rep))
		if *chaosJSON != "" {
			if err := experiments.WriteChaosJSON(*chaosJSON, rep); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("chaos report written to %s\n", *chaosJSON)
		}
		if !rep.AllPass {
			fatalf("chaos matrix failed")
		}
	}

	if *sanOverhead {
		rep, err := experiments.RunSanitizerOverhead(*sanTgt, *sanExecs, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(experiments.FormatSanitizer(rep))
		if *sanJSON != "" {
			if err := experiments.WriteSanitizerJSON(*sanJSON, rep); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("sanitizer report written to %s\n", *sanJSON)
		}
	}

	if *elision {
		rep, err := experiments.RunRestoreElision(*elisionExecs, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(experiments.FormatElision(rep))
		if *elisionJSON != "" {
			if err := experiments.WriteElisionJSON(*elisionJSON, rep); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("elision report written to %s\n", *elisionJSON)
		}
	}

	if *dictGain {
		rep, err := experiments.RunDictGain(*dictExecs, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(experiments.FormatDictGain(rep))
		if *dictJSON != "" {
			if err := experiments.WriteDictGainJSON(*dictJSON, rep); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("harness report written to %s\n", *dictJSON)
		}
	}

	if *synthGain {
		rep, err := experiments.RunSynthGain(*synthExecs, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(experiments.FormatSynthGain(rep))
		if *synthJSON != "" {
			if err := experiments.WriteSynthGainJSON(*synthJSON, rep); err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("synthesis report written to %s\n", *synthJSON)
		}
		// Any CLX130 is a synthesizer bug: a harness we emitted failed its
		// own certification. Fail the bench after writing the artifact.
		if rep.CLX130 > 0 {
			fatalf("synth-gain: %d CLX130 certification failure(s)", rep.CLX130)
		}
	}

	if *ablation {
		rows, err := experiments.RunAblation(*duration, *seed)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(experiments.FormatAblation(rows))
		res, err := experiments.RunDeferInitAblation(500)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("\nDeferInitPass extension: %.0f ns/exec -> %.0f ns/exec (%.2fx), results equivalent: %v\n",
			res.NsPerExecBaseline, res.NsPerExecDeferred, res.Speedup, res.ResultsEquivalent)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "closurex-bench: "+format+"\n", args...)
	os.Exit(1)
}
