// Command closurex-fuzz runs a fuzzing campaign on a registered benchmark
// (or a user MinC file) under a chosen execution mechanism, printing
// periodic status lines and a final crash report.
//
// Usage:
//
//	closurex-fuzz -target gpmf-parser -mechanism closurex -duration 10s
//	closurex-fuzz -file prog.c -seed-file s1.bin -seed-file s2.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"closurex"
)

type seedFiles []string

func (s *seedFiles) String() string     { return fmt.Sprint(*s) }
func (s *seedFiles) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var seeds seedFiles
	var (
		targetName = flag.String("target", "", "registered benchmark (see closurex-cc -list-targets)")
		file       = flag.String("file", "", "MinC source file to fuzz")
		mechanism  = flag.String("mechanism", "closurex", "fresh | forkserver | persistent-naive | closurex")
		duration   = flag.Duration("duration", 10*time.Second, "fuzzing time")
		seed       = flag.Uint64("seed", 1, "campaign RNG seed")
		status     = flag.Duration("status", 2*time.Second, "status interval")
	)
	var (
		outDir = flag.String("out", "", "directory to persist crashes/ and queue/ into")
		replay = flag.String("replay", "", "replay one input file instead of fuzzing")
		tmin   = flag.Bool("minimize-crashes", false, "minimize each crash input before reporting")
		cmin   = flag.Bool("minimize-corpus", false, "write the coverage-preserving corpus subset to -out")
	)
	flag.Var(&seeds, "seed-file", "seed corpus file (repeatable; -file mode)")
	flag.Parse()

	var f *closurex.Fuzzer
	var err error
	switch {
	case *targetName != "":
		f, err = closurex.NewBenchmarkFuzzer(*targetName, *mechanism, *seed)
	case *file != "":
		data, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatalf("%v", rerr)
		}
		var corpus [][]byte
		for _, sf := range seeds {
			b, rerr := os.ReadFile(sf)
			if rerr != nil {
				fatalf("%v", rerr)
			}
			corpus = append(corpus, b)
		}
		f, err = closurex.NewFuzzer(string(data), corpus, closurex.Options{
			Mechanism: *mechanism, Seed: *seed,
		})
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()

	if *replay != "" {
		data, rerr := os.ReadFile(*replay)
		if rerr != nil {
			fatalf("%v", rerr)
		}
		crashed, key := f.TryOne(data)
		if crashed {
			fmt.Printf("CRASH %s\n", key)
			os.Exit(3)
		}
		fmt.Println("no crash")
		return
	}

	fmt.Printf("fuzzing with mechanism=%s for %v\n", f.Mechanism(), *duration)
	deadline := time.Now().Add(*duration)
	for time.Now().Before(deadline) {
		slice := *status
		if rem := time.Until(deadline); rem < slice {
			slice = rem
		}
		f.RunFor(slice)
		fmt.Println(f.Stats())
	}

	st := f.Stats()
	fmt.Printf("\nfinal: %s\n", st)
	if len(st.Crashes) == 0 {
		fmt.Println("no crashes found")
		return
	}
	fmt.Printf("%d unique crash(es):\n", len(st.Crashes))
	for i := range st.Crashes {
		c := &st.Crashes[i]
		if *tmin {
			if min, err := f.MinimizeCrash(c.Input); err == nil {
				fmt.Printf("  minimized %d -> %d bytes\n", len(c.Input), len(min))
				c.Input = min
			}
		}
		fmt.Printf("  %-50s first at %8.2fs, %5d hits, input %q\n",
			c.Key, c.FirstAt.Seconds(), c.Count, preview(c.Input))
	}
	if *cmin && *outDir == "" {
		fatalf("-minimize-corpus requires -out")
	}
	if *outDir != "" {
		if err := persist(*outDir, f, st, *cmin); err != nil {
			fatalf("persisting results: %v", err)
		}
		fmt.Printf("crashes and corpus written to %s\n", *outDir)
	}
}

// persist writes triaged crash inputs and the corpus to disk, in the
// layout AFL users expect (crashes/ and queue/). With minimizeCorpus the
// queue is first reduced to its coverage-preserving subset.
func persist(dir string, f *closurex.Fuzzer, st closurex.Stats, minimizeCorpus bool) error {
	crashDir := filepath.Join(dir, "crashes")
	queueDir := filepath.Join(dir, "queue")
	for _, d := range []string{crashDir, queueDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}
	sanitize := strings.NewReplacer("/", "_", ":", "_", "@", "_")
	for _, c := range st.Crashes {
		name := sanitize.Replace(c.Key) + ".bin"
		if err := os.WriteFile(filepath.Join(crashDir, name), c.Input, 0o644); err != nil {
			return err
		}
	}
	corpus := f.Corpus()
	if minimizeCorpus {
		before := len(corpus)
		corpus = f.MinimizeCorpus()
		fmt.Printf("corpus minimized: %d -> %d entries\n", before, len(corpus))
	}
	for i, in := range corpus {
		name := fmt.Sprintf("id_%06d.bin", i)
		if err := os.WriteFile(filepath.Join(queueDir, name), in, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func preview(b []byte) string {
	if len(b) > 32 {
		return string(b[:32]) + "..."
	}
	return string(b)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "closurex-fuzz: "+format+"\n", args...)
	os.Exit(1)
}
