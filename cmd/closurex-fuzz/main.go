// Command closurex-fuzz runs a fuzzing campaign on a registered benchmark
// (or a user MinC file) under a chosen execution mechanism, printing
// periodic status lines and a final crash report.
//
// Usage:
//
//	closurex-fuzz -target gpmf-parser -mechanism closurex -duration 10s
//	closurex-fuzz -file prog.c -seed-file s1.bin -seed-file s2.bin
//	closurex-fuzz -synth-target freetype -duration 10s
//
// With -synth-target the static harness synthesizer (analysis/synth) emits
// and certifies a dispatch harness for the named benchmark's
// under-exercised exported functions, registers it in the target registry
// as "<name>+synth", and fuzzes that synthesized target.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"closurex"
	"closurex/internal/analysis/synth"
	"closurex/internal/core"
	"closurex/internal/stats"
	"closurex/internal/targets"
)

type seedFiles []string

func (s *seedFiles) String() string     { return fmt.Sprint(*s) }
func (s *seedFiles) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var seeds seedFiles
	var (
		targetName = flag.String("target", "", "registered benchmark (see closurex-cc -list-targets)")
		synthName  = flag.String("synth-target", "", "synthesize, register and fuzz a dispatch harness for this benchmark's under-exercised functions")
		file       = flag.String("file", "", "MinC source file to fuzz")
		mechanism  = flag.String("mechanism", "closurex", "fresh | forkserver | persistent-naive | closurex")
		backend    = flag.String("backend", "interp", "VM execution engine: interp (reference interpreter) | compiled (closure-chain tier; bit-identical, faster)")
		sentCross  = flag.Bool("sentinel-cross-backend", false, "with -sentinel-every: run the sentinel's fresh-process reference on the other backend, differentially testing the execution tiers")
		transval   = flag.String("transval", "on", "translation validation for the compiled tier: on (refuse to start uncertified) | off (bypass the gate)")
		duration   = flag.Duration("duration", 10*time.Second, "fuzzing time")
		seed       = flag.Uint64("seed", 1, "campaign RNG seed")
		status     = flag.Duration("status", 2*time.Second, "status interval")
		jobs       = flag.Int("jobs", 1, "parallel campaign shards (each with its own process image)")
		maxShardRs = flag.Int("max-shard-restarts", 0, "consecutive supervised restarts per shard before mechanism rebuild (0 = default 3; -jobs > 1)")
		shardBack  = flag.Duration("shard-backoff", 0, "base shard-restart cooldown, doubling per consecutive fault (0 = default 2ms; -jobs > 1)")
		statsJSON  = flag.String("stats-json", "", "append per-shard health snapshots to this JSON-lines file at every status interval")
	)
	var (
		outDir = flag.String("out", "", "directory to persist crashes/ and queue/ into")
		replay = flag.String("replay", "", "replay one input file instead of fuzzing")
		tmin   = flag.Bool("minimize-crashes", false, "minimize each crash input before reporting")
		cmin   = flag.Bool("minimize-corpus", false, "write the coverage-preserving corpus subset to -out")
	)
	var (
		lint      = flag.Bool("lint", false, "run the static restore-completeness lints and refuse to fuzz a module that fails them")
		sanitize  = flag.Bool("sanitize", false, "arm the heap sanitizer (shadow memory, redzones, free quarantine; statically elides provably safe checks)")
		noElide   = flag.Bool("sanitize-no-elide", false, "with -sanitize: keep every check, disabling the static elision analysis (benchmark configuration)")
		resilient = flag.Bool("resilient", false, "arm the restore watchdog + rebuild/fallback ladder")
		interproc = flag.Bool("interproc", false, "arm interprocedural restore elision: snapshot/restore/watch only the analysis-proven may-written global ranges")
		autoDict  = flag.Bool("auto-dict", false, "merge the statically harvested auto-dictionary (input-dataflow compare constants) into the mutation dictionary")
		auditRest = flag.Bool("audit-restore", false, "periodically re-check the full closure section at runtime to validate elision soundness")
		sentEvery = flag.Int64("sentinel-every", 0, "divergence sentinel period in execs (0 = off)")
		ckptPath  = flag.String("checkpoint", "", "write campaign checkpoints to this file (periodically and on exit/signal)")
		ckptEvery = flag.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval (with -checkpoint)")
		resume    = flag.String("resume", "", "resume a campaign from a checkpoint file (same target/mechanism/seed)")
	)
	flag.Var(&seeds, "seed-file", "seed corpus file (repeatable; -file mode)")
	flag.Parse()

	if *transval != "on" && *transval != "off" {
		fmt.Fprintf(os.Stderr, "closurex-fuzz: -transval must be on or off, got %q\n", *transval)
		os.Exit(2)
	}

	// A supervisor signal stops the campaign at the next coarse check
	// instead of killing it mid-iteration, so every shard drains to a sync
	// boundary and the final checkpoint always lands on clean Step
	// boundaries. A second signal hard-exits for operators who cannot wait
	// for the drain.
	stop := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Fprintln(os.Stderr, "closurex-fuzz: signal received, draining shards and checkpointing... (again to force quit)")
		close(stop)
		<-sigCh
		fmt.Fprintln(os.Stderr, "closurex-fuzz: second signal, exiting now")
		os.Exit(130)
	}()

	opts := closurex.Options{
		Mechanism:            *mechanism,
		Backend:              *backend,
		SentinelCrossBackend: *sentCross,
		TransvalOff:          *transval == "off",
		Seed:                 *seed,
		Sanitize:             *sanitize,
		SanitizeNoElide:      *noElide,
		Resilient:            *resilient,
		Interproc:            *interproc,
		AuditRestore:         *auditRest,
		AutoDict:             *autoDict,
		SentinelEvery:        *sentEvery,
		Stop:                 stop,
		Jobs:                 *jobs,
		MaxShardRestarts:     *maxShardRs,
		ShardBackoff:         *shardBack,
	}
	if *ckptPath != "" {
		// Bit-identical resume needs the target's entropy pinned.
		opts.DeterministicRand = true
	}
	if *resume != "" {
		data, rerr := os.ReadFile(*resume)
		if rerr != nil {
			fatalf("%v", rerr)
		}
		opts.ResumeFrom = data
	}

	var f *closurex.Fuzzer
	var err error
	switch {
	case *synthName != "":
		base := targets.Get(*synthName)
		if base == nil {
			fatalf("unknown target %q for -synth-target (have %v)", *synthName, targets.Names())
		}
		nt, h, serr := synth.TargetFor(base, synth.Options{})
		if serr != nil {
			if h != nil {
				for _, d := range h.Diags {
					fmt.Fprintf(os.Stderr, "closurex-fuzz: synth: %s\n", d)
				}
			}
			fatalf("%v", serr)
		}
		if existing := targets.Get(nt.Name); existing != nil {
			nt = existing
		} else if rerr := core.RegisterTarget(nt); rerr != nil {
			fatalf("registering synthesized target: %v", rerr)
		}
		fmt.Printf("synthesized %q: %d dispatch arm(s), %d-byte header, certified; fuzzing it\n",
			nt.Name, len(h.Report.Arms), h.Report.HdrBytes)
		f, err = closurex.NewBenchmarkFuzzerOptions(nt.Name, *mechanism, opts)
	case *targetName != "":
		f, err = closurex.NewBenchmarkFuzzerOptions(*targetName, *mechanism, opts)
	case *file != "":
		data, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatalf("%v", rerr)
		}
		var corpus [][]byte
		for _, sf := range seeds {
			b, rerr := os.ReadFile(sf)
			if rerr != nil {
				fatalf("%v", rerr)
			}
			corpus = append(corpus, b)
		}
		f, err = closurex.NewFuzzer(string(data), corpus, opts)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()

	if *lint {
		// A campaign against a module that fails the restore-completeness
		// lints would fuzz polluted state from iteration two onward; refuse
		// up front rather than let the sentinel discover it hours in.
		diags := f.Lint()
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "closurex-fuzz: lint: %s\n", d)
		}
		if closurex.HasLintErrors(diags) {
			fatalf("module failed the restore-completeness lints; not starting the campaign")
		}
		fmt.Printf("lint clean: module statically restartable under mechanism=%s\n", f.Mechanism())
	}

	if *replay != "" {
		data, rerr := os.ReadFile(*replay)
		if rerr != nil {
			fatalf("%v", rerr)
		}
		crashed, key := f.TryOne(data)
		if crashed {
			fmt.Printf("CRASH %s\n", key)
			os.Exit(3)
		}
		fmt.Println("no crash")
		return
	}

	if f.Jobs() > 1 {
		fmt.Printf("fuzzing with mechanism=%s jobs=%d for %v\n", f.Mechanism(), f.Jobs(), *duration)
	} else {
		fmt.Printf("fuzzing with mechanism=%s for %v\n", f.Mechanism(), *duration)
	}
	var healthLog *stats.HealthLog
	if *statsJSON != "" {
		healthLog, err = stats.OpenHealthLog(*statsJSON)
		if err != nil {
			fatalf("%v", err)
		}
		defer healthLog.Close()
	}
	deadline := time.Now().Add(*duration)
	lastCkpt := time.Now()
	for time.Now().Before(deadline) && !stopped(stop) {
		slice := *status
		if rem := time.Until(deadline); rem < slice {
			slice = rem
		}
		f.RunFor(slice)
		fmt.Println(f.Stats())
		if healthLog != nil {
			if err := healthLog.Append(healthSnapshot(f)); err != nil {
				fmt.Fprintf(os.Stderr, "closurex-fuzz: stats-json: %v\n", err)
			}
		}
		if *ckptPath != "" && time.Since(lastCkpt) >= *ckptEvery {
			if err := f.CheckpointTo(*ckptPath); err != nil {
				fmt.Fprintf(os.Stderr, "closurex-fuzz: checkpoint: %v\n", err)
			}
			lastCkpt = time.Now()
		}
		if f.HealthyShards() == 0 {
			fmt.Fprintln(os.Stderr, "closurex-fuzz: every shard quarantined; ending the campaign early")
			break
		}
	}
	if healthLog != nil {
		if err := healthLog.Append(healthSnapshot(f)); err != nil {
			fmt.Fprintf(os.Stderr, "closurex-fuzz: stats-json: %v\n", err)
		}
	}
	if *ckptPath != "" {
		if err := f.CheckpointTo(*ckptPath); err != nil {
			fatalf("final checkpoint: %v", err)
		}
		fmt.Printf("checkpoint written to %s\n", *ckptPath)
	}

	st := f.Stats()
	fmt.Printf("\nfinal: %s\n", st)
	if len(st.Hangs) > 0 {
		fmt.Printf("%d unique hang(s):\n", len(st.Hangs))
		for i := range st.Hangs {
			h := &st.Hangs[i]
			fmt.Printf("  %-50s first at %8.2fs, %5d hits\n", h.Key, h.FirstAt.Seconds(), h.Count)
		}
	}
	if len(st.Crashes) == 0 {
		fmt.Println("no crashes found")
		return
	}
	fmt.Printf("%d unique crash(es):\n", len(st.Crashes))
	for i := range st.Crashes {
		c := &st.Crashes[i]
		if *tmin {
			if min, err := f.MinimizeCrash(c.Input); err == nil {
				fmt.Printf("  minimized %d -> %d bytes\n", len(c.Input), len(min))
				c.Input = min
			}
		}
		fmt.Printf("  %-50s first at %8.2fs, %5d hits, input %q\n",
			c.Key, c.FirstAt.Seconds(), c.Count, preview(c.Input))
	}
	if *cmin && *outDir == "" {
		fatalf("-minimize-corpus requires -out")
	}
	if *outDir != "" {
		if err := persist(*outDir, f, st, *cmin); err != nil {
			fatalf("persisting results: %v", err)
		}
		fmt.Printf("crashes and corpus written to %s\n", *outDir)
	}
}

// persist writes triaged crash inputs and the corpus to disk, in the
// layout AFL users expect (crashes/ and queue/). With minimizeCorpus the
// queue is first reduced to its coverage-preserving subset.
func persist(dir string, f *closurex.Fuzzer, st closurex.Stats, minimizeCorpus bool) error {
	crashDir := filepath.Join(dir, "crashes")
	queueDir := filepath.Join(dir, "queue")
	for _, d := range []string{crashDir, queueDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}
	sanitize := strings.NewReplacer("/", "_", ":", "_", "@", "_")
	for _, c := range st.Crashes {
		name := sanitize.Replace(c.Key) + ".bin"
		if err := os.WriteFile(filepath.Join(crashDir, name), c.Input, 0o644); err != nil {
			return err
		}
	}
	corpus := f.Corpus()
	if minimizeCorpus {
		before := len(corpus)
		corpus = f.MinimizeCorpus()
		fmt.Printf("corpus minimized: %d -> %d entries\n", before, len(corpus))
	}
	for i, in := range corpus {
		name := fmt.Sprintf("id_%06d.bin", i)
		if err := os.WriteFile(filepath.Join(queueDir, name), in, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// stopped reports whether the supervisor channel has closed.
func stopped(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// healthSnapshot assembles one -stats-json line from the fuzzer's current
// aggregate stats and per-shard supervision state.
func healthSnapshot(f *closurex.Fuzzer) stats.HealthSnapshot {
	st := f.Stats()
	snap := stats.HealthSnapshot{
		Execs:         st.Execs,
		Edges:         st.Edges,
		Corpus:        st.QueueLen,
		Crashes:       len(st.Crashes),
		Hangs:         len(st.Hangs),
		Divergences:   st.Divergences,
		HealthyShards: f.HealthyShards(),
	}
	if st.ExecsPerSec > 0 {
		snap.ElapsedSec = float64(st.Execs) / st.ExecsPerSec
	}
	for _, h := range f.ShardHealth() {
		rec := stats.ShardHealthRecord{
			Shard:             h.Shard,
			Execs:             h.Execs,
			Crashes:           h.Crashes,
			Hangs:             h.Hangs,
			ExecRate:          h.ExecRate,
			Restarts:          h.Restarts,
			Rebuilds:          h.Rebuilds,
			RestoreFailures:   h.RestoreFailures,
			ConsecutiveFaults: h.ConsecutiveFaults,
			HangEscalations:   h.HangEscalations,
			InboxDropped:      h.InboxDropped,
			PendingPublish:    h.PendingPublish,
			Quarantined:       h.Quarantined,
			Stalled:           h.Stalled,
			LastFault:         h.LastFault,
			MechDegraded:      h.MechDegraded,
		}
		if !h.LastProgress.IsZero() {
			rec.LastProgress = h.LastProgress.UTC().Format(time.RFC3339Nano)
		}
		snap.Shards = append(snap.Shards, rec)
	}
	return snap
}

func preview(b []byte) string {
	if len(b) > 32 {
		return string(b[:32]) + "..."
	}
	return string(b)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "closurex-fuzz: "+format+"\n", args...)
	os.Exit(1)
}
