// Command closurex-cc is the ClosureX compiler driver: it compiles MinC
// source (a file or a registered benchmark) and applies an instrumentation
// pipeline, then dumps the result — IR text, the section table (the
// Figure 3 view) or the pass inventory (Table 3).
//
// Usage:
//
//	closurex-cc -list-passes
//	closurex-cc -target gpmf-parser -sections
//	closurex-cc -file prog.c -variant closurex -dump-ir
package main

import (
	"flag"
	"fmt"
	"os"

	"closurex/internal/core"
	"closurex/internal/experiments"
	"closurex/internal/ir"
	"closurex/internal/passes"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

func main() {
	var (
		targetName = flag.String("target", "", "registered benchmark to compile (see -list-targets)")
		file       = flag.String("file", "", "MinC source file to compile")
		variant    = flag.String("variant", "closurex", "pipeline: pristine | baseline | closurex | closurex+deferinit")
		dumpIR     = flag.Bool("dump-ir", false, "print the instrumented IR")
		sections   = flag.Bool("sections", false, "print the section table (Figure 3 view)")
		transform  = flag.Bool("transform", false, "print before/after GlobalPass section tables (Figure 3)")
		listPasses = flag.Bool("list-passes", false, "print the pass inventory (Table 3)")
		listTgts   = flag.Bool("list-targets", false, "print the benchmark inventory (Table 4)")
		optimize   = flag.Bool("O", false, "run the optimization pipeline (const fold, dead blocks) first")
	)
	flag.Parse()

	if *listPasses {
		fmt.Print(experiments.Table3())
		return
	}
	if *listTgts {
		fmt.Print(experiments.Table4())
		return
	}

	var src, name string
	switch {
	case *targetName != "":
		t := targets.Get(*targetName)
		if t == nil {
			fatalf("unknown target %q; try -list-targets", *targetName)
		}
		src, name = t.Source, t.Short+".c"
		if *transform {
			out, err := experiments.SectionTransformation(t.Name)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Print(out)
			return
		}
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatalf("%v", err)
		}
		src, name = string(data), *file
	default:
		flag.Usage()
		os.Exit(2)
	}

	v, ok := map[string]core.Variant{
		"pristine":           core.Pristine,
		"baseline":           core.Baseline,
		"closurex":           core.ClosureX,
		"closurex+deferinit": core.ClosureXDeferInit,
	}[*variant]
	if !ok {
		fatalf("unknown variant %q", *variant)
	}

	pristine, err := core.Compile(name, src)
	if err != nil {
		fatalf("%v", err)
	}
	if *optimize {
		pm := passes.NewManager(vm.Builtins())
		pm.Add(passes.OptimizePipeline()...)
		if err := pm.Run(pristine); err != nil {
			fatalf("optimizing: %v", err)
		}
	}
	mod, err := core.Instrument(pristine, v)
	if err != nil {
		fatalf("%v", err)
	}
	instrs := 0
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			instrs += len(b.Instrs)
		}
	}
	fmt.Printf("compiled %s: %d functions, %d globals, %d blocks, %d instructions, %d coverage probes, %d static edges\n",
		name, len(mod.Funcs), len(mod.Globals), mod.NumBlocks(), instrs,
		passes.CountProbes(mod), passes.TotalEdges(mod))
	if *sections {
		fmt.Print(vm.NewLayout(mod).String())
	}
	if *dumpIR {
		fmt.Print(ir.Print(mod))
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "closurex-cc: "+format+"\n", args...)
	os.Exit(1)
}
