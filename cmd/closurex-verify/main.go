// Command closurex-verify runs the paper's §6.1.4 correctness validation:
// for every queue input of a target, it compares the program state (global
// section bytes, heap census, descriptor census) and the path-sensitive
// edge trace of a fresh-process execution against the same input executed
// inside ClosureX's persistent process after heavy pollution, masking
// natural nondeterminism identified from repeated fresh runs.
//
// Usage:
//
//	closurex-verify -target all -cases 40 -pollution 1000
package main

import (
	"flag"
	"fmt"
	"os"

	"closurex/internal/experiments"
	"closurex/internal/targets"
)

func main() {
	var (
		target     = flag.String("target", "all", "benchmark name or 'all'")
		queueExecs = flag.Int64("queue-execs", 4000, "campaign size used to build the replay queue")
		pollution  = flag.Int("pollution", 1000, "polluting iterations before each probe (paper: 1000)")
		maxCases   = flag.Int("cases", 40, "max queue entries to replay per target")
		seed       = flag.Uint64("seed", 0xC0FFEE, "RNG seed")
	)
	flag.Parse()

	var names []string
	if *target == "all" {
		for _, t := range targets.Benchmarks() {
			names = append(names, t.Name)
		}
	} else {
		names = []string{*target}
	}

	opts := experiments.CorrectnessOptions{
		QueueExecs: *queueExecs,
		Pollution:  *pollution,
		MaxCases:   *maxCases,
		Seed:       *seed,
	}

	failures := 0
	for _, name := range names {
		rep, err := experiments.RunCorrectness(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "closurex-verify: %s: %v\n", name, err)
			failures++
			continue
		}
		status := "OK"
		if rep.DataflowMismatches > 0 || rep.ControlFlowMismatches > 0 {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%-5s %s\n", status, rep)
	}
	if failures == 0 {
		fmt.Println("\nsemantic consistency verified: every replayed test case behaved as in an isolated fresh process")
	} else {
		os.Exit(1)
	}
}
