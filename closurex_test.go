package closurex

import (
	"strings"
	"testing"
)

const demoSource = `
int runs;
int main(void) {
	runs++;
	int f = fopen("/input", "r");
	if (!f) abort();
	int a = fgetc(f);
	int b = fgetc(f);
	fclose(f);
	if (a == 'B' && b == '!') {
		int *p = 0;
		return *p;          // planted crash
	}
	return a + b;
}
`

func TestMechanismsAndBenchmarks(t *testing.T) {
	ms := Mechanisms()
	if len(ms) != 5 || ms[0] != "fresh" || ms[4] != "closurex" {
		t.Fatalf("Mechanisms = %v", ms)
	}
	bs := Benchmarks()
	if len(bs) != 10 {
		t.Fatalf("Benchmarks = %v", bs)
	}
}

func TestNewFuzzerFindsPlantedCrash(t *testing.T) {
	f, err := NewFuzzer(demoSource, [][]byte{[]byte("B?")}, Options{Seed: 3, MaxInputLen: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.RunExecs(30000)
	st := f.Stats()
	if st.Execs < 30000 || st.Edges == 0 || st.QueueLen == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if len(st.Crashes) != 1 {
		t.Fatalf("crashes = %d, want 1", len(st.Crashes))
	}
	cr := st.Crashes[0]
	if cr.Kind != "null-pointer-dereference" || cr.Fn != "target_main" {
		t.Fatalf("crash = %+v", cr)
	}
	if !strings.HasPrefix(string(cr.Input), "B!") {
		t.Fatalf("crash input = %q", cr.Input)
	}
	// ClosureX keeps everything in one process image except when a crash
	// kills it: spawns == initial image + one respawn per crashing exec.
	var crashExecs int64
	for _, c := range st.Crashes {
		crashExecs += c.Count
	}
	if st.Spawns != 1+crashExecs {
		t.Fatalf("spawns = %d, want %d (1 + %d crashes)", st.Spawns, 1+crashExecs, crashExecs)
	}
}

func TestTryOne(t *testing.T) {
	f, err := NewFuzzer(demoSource, [][]byte{[]byte("xy")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if crashed, _ := f.TryOne([]byte("xy")); crashed {
		t.Fatal("benign input crashed")
	}
	crashed, key := f.TryOne([]byte("B!"))
	if !crashed || !strings.Contains(key, "null-pointer-dereference") {
		t.Fatalf("TryOne = %v %q", crashed, key)
	}
}

func TestNewFuzzerRejectsBadInput(t *testing.T) {
	if _, err := NewFuzzer("int main(void) { return nope; }", nil, Options{}); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := NewFuzzer(demoSource, nil, Options{Mechanism: "warp"}); err == nil {
		t.Fatal("bad mechanism accepted")
	}
}

func TestNewBenchmarkFuzzer(t *testing.T) {
	f, err := NewBenchmarkFuzzer("giftext", "forkserver", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Mechanism() != "forkserver" {
		t.Fatalf("mechanism = %s", f.Mechanism())
	}
	f.RunExecs(200)
	if st := f.Stats(); st.Execs < 200 || st.TotalEdges == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if len(f.Corpus()) == 0 {
		t.Fatal("empty corpus")
	}
	if _, err := NewBenchmarkFuzzer("nope", "closurex", 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestCheckSource(t *testing.T) {
	if err := CheckSource(demoSource); err != nil {
		t.Fatal(err)
	}
	if err := CheckSource("int main(void) {"); err == nil {
		t.Fatal("invalid source passed")
	}
}

func TestSectionLayout(t *testing.T) {
	out, err := SectionLayout(demoSource)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "closure_global_section") {
		t.Fatalf("layout missing closure section:\n%s", out)
	}
	if !strings.Contains(out, ".rodata") {
		t.Fatalf("layout missing rodata:\n%s", out)
	}
}

func TestStatsString(t *testing.T) {
	f, _ := NewFuzzer(demoSource, [][]byte{[]byte("ab")}, Options{})
	defer f.Close()
	f.RunExecs(100)
	s := f.Stats().String()
	if !strings.Contains(s, "execs=") || !strings.Contains(s, "edges=") {
		t.Fatalf("Stats.String = %q", s)
	}
}
