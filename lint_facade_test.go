package closurex

import (
	"strings"
	"testing"
)

func TestLintSourceCleanProgram(t *testing.T) {
	ds, err := LintSource(demoSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Fatalf("pipeline output flagged: %v", ds)
	}
	if HasLintErrors(ds) {
		t.Fatal("HasLintErrors true on an empty finding list")
	}
}

func TestLintSourceRejectsBadSource(t *testing.T) {
	if _, err := LintSource("int main(void) { return"); err == nil {
		t.Fatal("unparseable source accepted")
	}
}

func TestFuzzerLintAcrossMechanisms(t *testing.T) {
	for _, mech := range []string{"closurex", "fresh"} {
		f, err := NewFuzzer(demoSource, [][]byte{[]byte("ab")}, Options{Mechanism: mech})
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		ds := f.Lint()
		f.Close()
		if len(ds) != 0 || HasLintErrors(ds) {
			t.Fatalf("%s build flagged: %v", mech, ds)
		}
	}
}

func TestDiagnosticStringRendering(t *testing.T) {
	d := Diagnostic{ID: "CLX004", Severity: "error", Pass: "GlobalPass",
		Func: "target_main", Block: 1, Instr: -1, Line: 3, Msg: "writable global leaked"}
	s := d.String()
	for _, want := range []string{"CLX004", "error", "GlobalPass", "target_main", "b1", "line 3", "writable global leaked"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered %q missing %q", s, want)
		}
	}
	if !HasLintErrors([]Diagnostic{d}) {
		t.Fatal("error-severity diagnostic not counted by HasLintErrors")
	}
	if HasLintErrors([]Diagnostic{{Severity: "warn"}}) {
		t.Fatal("warn-severity diagnostic counted as lint error")
	}
}
