// Package closurex is the public API of this reproduction of "ClosureX:
// Compiler Support for Correct Persistent Fuzzing" (ASPLOS 2025).
//
// The library turns a MinC program (a C subset; see internal/minc) into a
// naturally restartable fuzzing target: a compiler pass pipeline renames
// main, hooks exit(), routes heap and file-handle traffic through tracking
// wrappers and segregates writable globals into closure_global_section; a
// runtime harness then runs an entire fuzzing campaign inside one process
// image, restoring exactly the test-case-specific state between runs.
//
// Quick start:
//
//	f, err := closurex.NewFuzzer(source, seeds, closurex.Options{})
//	if err != nil { ... }
//	defer f.Close()
//	f.RunFor(5 * time.Second)
//	fmt.Println(f.Stats())
//
// The paper's ten benchmark targets (Table 4) are pre-registered; build a
// fuzzer for one with NewBenchmarkFuzzer("gpmf-parser", "closurex", 1).
package closurex

import (
	"fmt"
	"time"

	"closurex/internal/analysis"
	"closurex/internal/core"
	"closurex/internal/execmgr"
	"closurex/internal/fuzz"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// Mechanisms returns the execution-mechanism names on the paper's state
// restoration spectrum, slowest first: "fresh", "forkserver",
// "snapshot-lkm" (the related work's kernel snapshotting),
// "persistent-naive" (fast but incorrect), "closurex".
func Mechanisms() []string { return execmgr.Names() }

// Benchmarks returns the registered Table 4 benchmark names (auxiliary
// test-fixture targets like sandefect are resolvable by name but not
// part of the evaluation suite).
func Benchmarks() []string {
	var out []string
	for _, t := range targets.Benchmarks() {
		out = append(out, t.Name)
	}
	return out
}

// Options configures a Fuzzer.
type Options struct {
	// Mechanism is one of Mechanisms(); default "closurex".
	Mechanism string
	// Backend selects the VM execution engine for every process image the
	// mechanism builds: "" or "interp" for the reference interpreter,
	// "compiled" for the closure-chain compiled tier (pre-resolved direct
	// threading with superinstruction fusion; bit-identical coverage,
	// paths, faults and hang verdicts, several times faster).
	Backend string
	// SentinelCrossBackend makes the divergence sentinel's fresh-process
	// reference run on the OTHER backend (compiled campaign → interpreter
	// reference and vice versa), so every probe differentially tests the
	// two execution tiers against each other on real campaign inputs.
	// Requires SentinelEvery > 0 to have any effect.
	SentinelCrossBackend bool
	// TransvalOff disables the translation-validation gate: by default a
	// campaign that arms the compiled tier (Backend "compiled" or a
	// cross-backend sentinel) refuses to start unless analysis/transval
	// certifies the compiled program against the IR.
	TransvalOff bool
	// Seed seeds the deterministic campaign RNG.
	Seed uint64
	// MaxInputLen bounds mutated inputs (default 4096).
	MaxInputLen int
	// Budget bounds interpreted instructions per execution.
	Budget int64
	// DeferInit hoists a closurex_init routine out of the fuzzing loop.
	DeferInit bool
	// ImagePages sizes the simulated resident process image.
	ImagePages int
	// Files pre-populates the target's virtual filesystem (config files
	// read during initialization, for example). The test case itself
	// always appears at "/input".
	Files map[string][]byte
	// Dict supplies format keywords (magics, FourCCs) for the dictionary
	// mutators, as AFL users would via -x.
	Dict [][]byte
	// AutoDict additionally harvests an auto-dictionary from the compiled
	// module: the input-dataflow analysis (analysis/harnessaudit) extracts
	// the constants input-derived values are compared against — multi-byte
	// magics in both endiannesses, rodata strings behind str/memcmp,
	// call-site constant clusters — and merges them after Dict,
	// deduplicated and capped. Off, the dictionary is exactly Dict.
	AutoDict bool
	// Resilient wraps the closurex mechanism in the campaign resilience
	// ladder: a restore watchdog that validates post-iteration invariants,
	// quarantine + image rebuild on violation, and graceful degradation to
	// the forkserver after bounded retries.
	Resilient bool
	// SentinelEvery arms the divergence sentinel: every N executions one
	// queue entry is replayed in a fresh process image and cross-checked
	// against the persistent mechanism (edge set + fault verdict). 0
	// disables. Implies DeterministicRand so per-process entropy cannot
	// masquerade as divergence.
	SentinelEvery int64
	// DeterministicRand pins the target's rand()/heap-ASLR entropy to
	// Seed. Required for bit-identical checkpoint/resume.
	DeterministicRand bool
	// Sanitize arms the ASan-style heap sanitizer: the build carries
	// shadow-memory checks before every heap access (statically elided
	// where the bounds analysis proves them unnecessary, unless
	// SanitizeNoElide), allocations get redzones, frees go through a
	// poisoning quarantine, and crashes carry allocation/free sites that
	// refine triage buckets. Coverage bitmap geometry is identical with
	// and without the sanitizer.
	Sanitize bool
	// SanitizeNoElide disables the static check-elision analysis while
	// keeping the sanitizer armed — the benchmark configuration that
	// measures what the analysis is worth. Implies nothing unless
	// Sanitize is set.
	SanitizeNoElide bool
	// Interproc arms restore elision: the build runs the interprocedural
	// mod/ref + lifetime analysis (InterprocPass) and the ClosureX harness
	// scopes snapshot/restore/watchdog work to the proven may-write byte
	// ranges of closure_global_section. Coverage bitmaps and corpora are
	// bit-identical with and without it.
	Interproc bool
	// AuditRestore periodically re-checks the full closure section (and
	// the must-free/must-close censuses) against the init snapshot at
	// runtime, repairing and surfacing any drift the elided restore would
	// have missed — the soundness net under Interproc.
	AuditRestore bool
	// Stop, when non-nil, makes RunFor/RunExecs return cleanly (at a
	// checkpointable boundary) once the channel is closed.
	Stop <-chan struct{}
	// ResumeFrom restores campaign state from Fuzzer.Checkpoint bytes.
	// The source/benchmark, mechanism and Seed must match the checkpointed
	// run. Implies DeterministicRand. A parallel checkpoint resumed under
	// the same Jobs continues bit-identically; under a different Jobs > 1
	// the resume is elastic — the merged corpus is re-sharded
	// deterministically and coverage/counters/crash tables are preserved
	// exactly, but the forward mutation streams differ (inherent to
	// changing the topology).
	ResumeFrom []byte
	// Jobs shards the campaign across N parallel workers, each running its
	// own process image with an independent RNG stream split from Seed,
	// merging coverage into a shared global bitmap and exchanging corpus
	// discoveries through a corpus manager. 0 or 1 fuzzes sequentially;
	// Jobs == 1 through the parallel executor is bit-identical to the
	// sequential campaign. When the sentinel is armed it rides on shard 0.
	// Each shard runs under a supervisor that restarts it on faults with
	// exponential backoff, rebuilds its mechanism past MaxShardRestarts
	// consecutive faults, and quarantines it permanently if that fails too
	// — the campaign continues on the remaining healthy shards.
	Jobs int
	// MaxShardRestarts bounds consecutive supervised restarts per shard
	// before escalation (0 = default 3). Jobs > 1 only.
	MaxShardRestarts int
	// ShardBackoff is the base shard-restart cooldown, doubling per
	// consecutive fault (0 = default 2ms). Jobs > 1 only.
	ShardBackoff time.Duration
}

// CrashReport describes one triaged, deduplicated crash.
type CrashReport struct {
	// Key is the triage bucket: "<kind>@<function>:<line>".
	Key string
	// Kind is the sanitizer classification ("null-pointer-dereference",
	// "division-by-zero", ...).
	Kind string
	// Fn and Line locate the faulting source position.
	Fn   string
	Line int32
	// Input is the first test case that triggered the crash.
	Input []byte
	// FirstAt is the campaign time of first discovery.
	FirstAt time.Duration
	// Count is how many executions hit this bucket.
	Count int64
}

// Stats summarizes a campaign.
type Stats struct {
	// Execs is the number of test cases executed.
	Execs int64
	// ExecsPerSec is the mean execution rate so far.
	ExecsPerSec float64
	// Edges is the number of distinct coverage-map cells hit.
	Edges int
	// TotalEdges is the static bound on distinct coverage edges (the
	// denominator for coverage percentages).
	TotalEdges int
	// QueueLen is the corpus size.
	QueueLen int
	// Spawns counts process images built or forked (the
	// process-management cost the paper eliminates).
	Spawns int64
	// Crashes lists triaged crashes in discovery order.
	Crashes []CrashReport
	// Hangs lists triaged hangs (instruction-budget exhaustion), kept in a
	// separate table with function-level dedup so slow inputs are never
	// conflated with sanitizer faults.
	Hangs []CrashReport
	// Divergences counts sentinel probes whose persistent replay
	// disagreed with the fresh-process reference.
	Divergences int
	// Quarantined counts inputs pulled out of rotation by the sentinel or
	// the restore watchdog.
	Quarantined int
	// Degraded reports that the resilience ladder fell back from the
	// persistent mechanism to the forkserver.
	Degraded bool
}

func (s Stats) String() string {
	out := fmt.Sprintf("execs=%d (%.0f/s) edges=%d/%d queue=%d spawns=%d crashes=%d",
		s.Execs, s.ExecsPerSec, s.Edges, s.TotalEdges, s.QueueLen, s.Spawns, len(s.Crashes))
	if len(s.Hangs) > 0 {
		out += fmt.Sprintf(" hangs=%d", len(s.Hangs))
	}
	if s.Divergences > 0 || s.Quarantined > 0 {
		out += fmt.Sprintf(" divergences=%d quarantined=%d", s.Divergences, s.Quarantined)
	}
	if s.Degraded {
		out += " DEGRADED(forkserver)"
	}
	return out
}

// Fuzzer is a ready-to-run fuzzing configuration: an instrumented target,
// an execution mechanism and a campaign.
type Fuzzer struct {
	inst *core.Instance
}

// NewFuzzer compiles MinC source, instruments it for the chosen mechanism
// and prepares a campaign over the given seed corpus.
func NewFuzzer(source string, seeds [][]byte, opts Options) (*Fuzzer, error) {
	mechanism := opts.Mechanism
	if mechanism == "" {
		mechanism = "closurex"
	}
	maxLen := opts.MaxInputLen
	if maxLen <= 0 {
		maxLen = 4096
	}
	t := &targets.Target{
		Name:        "user",
		Short:       "user",
		Source:      source,
		Seeds:       func() [][]byte { return seeds },
		MaxInputLen: maxLen,
		ImagePages:  opts.ImagePages,
	}
	for _, tok := range opts.Dict {
		t.Dict = append(t.Dict, string(tok))
	}
	inst, err := core.NewInstance(t, mechanism, instanceOptions(opts))
	if err != nil {
		return nil, err
	}
	return &Fuzzer{inst: inst}, nil
}

// instanceOptions maps the public Options onto core's instance knobs.
func instanceOptions(opts Options) core.InstanceOptions {
	io := core.InstanceOptions{
		TrialSeed:            opts.Seed,
		Budget:               opts.Budget,
		DeferInit:            opts.DeferInit,
		Files:                opts.Files,
		SentinelEvery:        opts.SentinelEvery,
		DeterministicRand:    opts.DeterministicRand,
		Stop:                 opts.Stop,
		ResumeFrom:           opts.ResumeFrom,
		Jobs:                 opts.Jobs,
		MaxShardRestarts:     opts.MaxShardRestarts,
		ShardBackoff:         opts.ShardBackoff,
		Interproc:            opts.Interproc,
		AuditRestore:         opts.AuditRestore,
		AutoDict:             opts.AutoDict,
		Backend:              opts.Backend,
		SentinelCrossBackend: opts.SentinelCrossBackend,
		TransvalOff:          opts.TransvalOff,
	}
	if opts.Sanitize {
		io.Sanitize = core.SanitizeElide
		if opts.SanitizeNoElide {
			io.Sanitize = core.SanitizeNoElide
		}
	}
	if opts.Resilient {
		rc := execmgr.DefaultResilienceConfig()
		io.Resilience = &rc
	}
	if opts.SentinelEvery > 0 || opts.ResumeFrom != nil {
		// Probe replays and resumed runs must reproduce executions
		// exactly; per-process entropy would read as divergence/drift.
		io.DeterministicRand = true
	}
	return io
}

// NewBenchmarkFuzzer builds a fuzzer for a registered Table 4 benchmark
// under the given mechanism; trialSeed makes runs reproducible.
func NewBenchmarkFuzzer(benchmark, mechanism string, trialSeed uint64) (*Fuzzer, error) {
	return NewBenchmarkFuzzerOptions(benchmark, mechanism, Options{Seed: trialSeed})
}

// NewBenchmarkFuzzerOptions is NewBenchmarkFuzzer with the full option
// surface (resilience ladder, sentinel, checkpoint resume, stop channel).
func NewBenchmarkFuzzerOptions(benchmark, mechanism string, opts Options) (*Fuzzer, error) {
	t := targets.Get(benchmark)
	if t == nil {
		return nil, fmt.Errorf("closurex: unknown benchmark %q (have %v)", benchmark, Benchmarks())
	}
	if mechanism == "" {
		mechanism = "closurex"
	}
	inst, err := core.NewInstance(t, mechanism, instanceOptions(opts))
	if err != nil {
		return nil, err
	}
	return &Fuzzer{inst: inst}, nil
}

// RunFor fuzzes until d has elapsed.
func (f *Fuzzer) RunFor(d time.Duration) { f.inst.Driver().RunFor(d) }

// RunExecs fuzzes until at least n test cases have executed (aggregated
// across shards when Jobs > 1).
func (f *Fuzzer) RunExecs(n int64) { f.inst.Driver().RunExecs(n) }

// Jobs returns the number of parallel campaign shards (1 when sequential).
func (f *Fuzzer) Jobs() int { return f.inst.Jobs() }

// TryOne executes a single input and reports whether it crashed, with the
// triage key if so. Useful for reproducing a crash outside the campaign.
func (f *Fuzzer) TryOne(input []byte) (crashed bool, key string) {
	res := f.inst.Mech.Execute(input)
	for i := range f.inst.CovMap {
		f.inst.CovMap[i] = 0
	}
	if res.Fault != nil {
		return true, res.Fault.Key()
	}
	return false, ""
}

// Stats returns a snapshot of campaign progress. With Jobs > 1 the
// counters aggregate across shards and Spawns sums every shard's process
// spawns.
func (f *Fuzzer) Stats() Stats {
	c := f.inst.Driver()
	st := Stats{
		Execs:      c.Execs(),
		Edges:      c.Edges(),
		TotalEdges: f.inst.TotalEdges(),
		QueueLen:   c.QueueLen(),
	}
	for _, m := range f.inst.Mechs {
		st.Spawns += m.Spawns()
	}
	if el := c.Elapsed(); el > 0 {
		st.ExecsPerSec = float64(c.Execs()) / el.Seconds()
	}
	for _, cr := range c.Crashes() {
		st.Crashes = append(st.Crashes, report(cr))
	}
	for _, h := range c.Hangs() {
		st.Hangs = append(st.Hangs, report(h))
	}
	st.Divergences = len(c.Divergences())
	st.Quarantined = len(c.Quarantined())
	for _, m := range f.inst.Mechs {
		if r, ok := m.(*execmgr.Resilient); ok {
			st.Quarantined += len(r.Quarantined())
			st.Degraded = st.Degraded || r.Degraded()
		}
	}
	return st
}

func report(cr *fuzz.Crash) CrashReport {
	return CrashReport{
		Key:     cr.Key,
		Kind:    cr.Kind.String(),
		Fn:      cr.Fn,
		Line:    cr.Line,
		Input:   append([]byte(nil), cr.Input...),
		FirstAt: cr.FirstAt,
		Count:   cr.Count,
	}
}

// Checkpoint serializes the campaign's resumable state (queue, bitmap,
// crash and hang tables, RNG, scheduler and sentinel cursors; with Jobs >
// 1, one such blob per shard plus the merged campaign view). Feed the
// bytes back through Options.ResumeFrom to continue the campaign — with
// DeterministicRand and the same Jobs, bit-identically to an uninterrupted
// run; with a different Jobs > 1, elastically (see Options.ResumeFrom).
func (f *Fuzzer) Checkpoint() ([]byte, error) { return f.inst.Driver().Checkpoint() }

// CheckpointTo writes the checkpoint atomically to path (temp file in the
// same directory + rename), so a crash mid-write leaves the previous
// checkpoint intact instead of a truncated file Resume would reject.
func (f *Fuzzer) CheckpointTo(path string) error {
	return fuzz.SaveCheckpoint(f.inst.Driver(), path, nil)
}

// ShardHealth is one parallel shard's supervision snapshot (see
// Options.Jobs): progress counters, the supervisor's restart/rebuild/
// quarantine state, and the corpus-exchange backpressure gauges.
type ShardHealth struct {
	Shard             int
	Execs             int64
	Crashes           int64
	Hangs             int64
	ExecRate          float64
	Restarts          int64
	Rebuilds          int64
	RestoreFailures   int64
	ConsecutiveFaults int64
	HangEscalations   int64
	InboxDropped      int64
	PendingPublish    int64
	Quarantined       bool
	Stalled           bool
	LastProgress      time.Time
	LastFault         string
	MechDegraded      bool
}

// ShardHealth snapshots per-shard supervision state. Sequential fuzzers
// (Jobs <= 1) return nil. Safe to call while the campaign runs.
func (f *Fuzzer) ShardHealth() []ShardHealth {
	if f.inst.Parallel == nil {
		return nil
	}
	var out []ShardHealth
	for _, h := range f.inst.Parallel.Health() {
		out = append(out, ShardHealth(h))
	}
	return out
}

// HealthyShards counts shards not quarantined by their supervisor (equal
// to Jobs for sequential or fault-free fuzzers).
func (f *Fuzzer) HealthyShards() int {
	if f.inst.Parallel == nil {
		return 1
	}
	return f.inst.Parallel.HealthyShards()
}

// MinimizeCrash shrinks a crashing input to a minimal witness that still
// triggers the same triage bucket, then zeroes every byte that is not
// load-bearing (the afl-tmin workflow). The input must crash.
func (f *Fuzzer) MinimizeCrash(input []byte) ([]byte, error) {
	crashed, key := f.TryOne(input)
	if !crashed {
		return nil, fmt.Errorf("closurex: input does not crash")
	}
	pred := func(cand []byte) bool {
		c, k := f.TryOne(cand)
		return c && k == key
	}
	out := fuzz.TrimInput(input, pred)
	return fuzz.NormalizeInput(out, pred), nil
}

// MinimizeCorpus returns a coverage-preserving subset of the campaign's
// queue (the afl-cmin workflow): the smallest greedy set of inputs hitting
// every coverage-map cell the full queue hits.
func (f *Fuzzer) MinimizeCorpus() [][]byte {
	trace := func(in []byte) map[int]bool {
		f.inst.Mech.Execute(in)
		out := map[int]bool{}
		for i, v := range f.inst.CovMap {
			if v != 0 {
				out[i] = true
				f.inst.CovMap[i] = 0
			}
		}
		return out
	}
	return fuzz.MinimizeCorpus(f.Corpus(), trace)
}

// Corpus returns the accumulated queue inputs (deduplicated across shards
// when Jobs > 1).
func (f *Fuzzer) Corpus() [][]byte {
	var out [][]byte
	for _, e := range f.inst.Driver().Queue() {
		out = append(out, append([]byte(nil), e.Input...))
	}
	return out
}

// Mechanism returns the active execution mechanism's name.
func (f *Fuzzer) Mechanism() string { return f.inst.Mech.Name() }

// Close releases the fuzzer's process images.
func (f *Fuzzer) Close() { f.inst.Close() }

// CheckSource type-checks MinC source without building a fuzzer, returning
// a descriptive error for invalid programs.
func CheckSource(source string) error {
	_, err := core.Compile("user.c", source)
	return err
}

// Diagnostic is one structured finding from the static verifier or the
// restore-completeness lints: a stable catalog ID (CLX001…), a severity
// ("error" diagnostics make Lint-gated campaigns refuse to start), the
// pipeline pass held responsible, and the IR location.
type Diagnostic struct {
	ID       string
	Severity string
	Pass     string
	Func     string
	Block    int
	Instr    int
	Line     int32
	Msg      string
}

func (d Diagnostic) String() string {
	loc := ""
	if d.Func != "" {
		loc = " " + d.Func
		if d.Block >= 0 {
			loc += fmt.Sprintf(" b%d", d.Block)
		}
		if d.Line > 0 {
			loc += fmt.Sprintf(" line %d", d.Line)
		}
	}
	return fmt.Sprintf("%s %s [%s]%s: %s", d.ID, d.Severity, d.Pass, loc, d.Msg)
}

func publicDiags(ds analysis.Diagnostics) []Diagnostic {
	out := make([]Diagnostic, len(ds))
	for i, d := range ds {
		out[i] = Diagnostic{
			ID: d.ID, Severity: d.Sev.String(), Pass: d.Pass, Func: d.Func,
			Block: d.Block, Instr: d.Instr, Line: d.Line, Msg: d.Msg,
		}
	}
	return out
}

// HasLintErrors reports whether any diagnostic is error-severity — the
// condition under which a -lint campaign refuses to start.
func HasLintErrors(ds []Diagnostic) bool {
	for i := range ds {
		if ds[i].Severity == analysis.SevError.String() {
			return true
		}
	}
	return false
}

// Lint statically checks the fuzzer's instrumented module: the IR verifier
// (structure + definite-assignment dataflow) plus the restore-completeness
// lints appropriate for the active mechanism. A persistent (closurex)
// build is checked against the full catalog — no raw malloc/fopen/exit
// call sites, every writable global in closure_global_section, main
// renamed, collision-free coverage probes; baseline builds are checked
// against the shared subset. An empty result means the static analyzer
// can prove the campaign's between-iteration restores are complete.
func (f *Fuzzer) Lint() []Diagnostic {
	v := core.VariantFor(f.inst.Mech.Name())
	return publicDiags(core.CheckModule(f.inst.Module, v))
}

// LintSource compiles MinC source, runs the full ClosureX pipeline plus
// coverage over it, and returns the verifier/lint findings — the
// library-level equivalent of the closurex-lint command.
func LintSource(source string) ([]Diagnostic, error) {
	mod, err := core.Build("user.c", source, core.ClosureX)
	if err != nil {
		return nil, err
	}
	return publicDiags(core.CheckModule(mod, core.ClosureX)), nil
}

// SectionLayout compiles source with the full ClosureX pipeline and
// renders the resulting section table — the Figure 3 view showing writable
// globals segregated into closure_global_section.
func SectionLayout(source string) (string, error) {
	mod, err := core.Build("user.c", source, core.ClosureX)
	if err != nil {
		return "", err
	}
	return vm.NewLayout(mod).String(), nil
}
