package closurex

import (
	"bytes"
	"strings"
	"testing"
)

func TestMinimizeCrash(t *testing.T) {
	f, err := NewFuzzer(demoSource, [][]byte{[]byte("xy")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// A crashing input buried in noise: the demo crashes on "B!" prefix.
	noisy := []byte("B!________lots_of_trailing_noise_________")
	min, err := f.MinimizeCrash(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) != 2 || !bytes.Equal(min, []byte("B!")) {
		t.Fatalf("minimized = %q, want exactly B!", min)
	}
	crashed, key := f.TryOne(min)
	if !crashed || !strings.Contains(key, "null-pointer-dereference") {
		t.Fatalf("minimized witness does not crash: %v %q", crashed, key)
	}
	if _, err := f.MinimizeCrash([]byte("benign")); err == nil {
		t.Fatal("minimizing a benign input succeeded")
	}
}

func TestMinimizeCorpusFacade(t *testing.T) {
	f, err := NewFuzzer(demoSource, [][]byte{[]byte("xy"), []byte("ab")}, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.RunExecs(4000)
	full := f.Corpus()
	min := f.MinimizeCorpus()
	if len(min) == 0 || len(min) > len(full) {
		t.Fatalf("minimized corpus size %d vs full %d", len(min), len(full))
	}
	// The minimized set must preserve the edge union of the full corpus.
	union := func(inputs [][]byte) int {
		agg := map[int]bool{}
		for _, in := range inputs {
			f.TryOne(in) // TryOne clears the map after executing
		}
		// Recompute properly: execute and collect per input.
		for _, in := range inputs {
			f.inst.Mech.Execute(in)
			for i, v := range f.inst.CovMap {
				if v != 0 {
					agg[i] = true
					f.inst.CovMap[i] = 0
				}
			}
		}
		return len(agg)
	}
	if got, want := union(min), union(full); got < want {
		t.Fatalf("minimized corpus covers %d cells, full covers %d", got, want)
	}
}
