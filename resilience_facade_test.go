package closurex

import (
	"testing"
)

// Facade-level resilience coverage: checkpoint/resume round-trips through
// the public API, the resilience ladder and sentinel are reachable through
// Options, and a resumed campaign matches an uninterrupted one.

func TestFuzzerCheckpointResumeMatchesUninterrupted(t *testing.T) {
	seeds := [][]byte{[]byte("B?"), []byte("B!")} // second seed crashes at bootstrap
	opts := Options{Seed: 11, MaxInputLen: 8, DeterministicRand: true}

	uninterrupted, err := NewFuzzer(demoSource, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer uninterrupted.Close()
	uninterrupted.RunExecs(8000)

	killed, err := NewFuzzer(demoSource, seeds, opts)
	if err != nil {
		t.Fatal(err)
	}
	killed.RunExecs(3000)
	ckpt, err := killed.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	killed.Close() // the "killed" process is gone; only the bytes survive

	ropts := opts
	ropts.ResumeFrom = ckpt
	resumed, err := NewFuzzer(demoSource, seeds, ropts)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if got := resumed.Stats().Execs; got != 3000 {
		t.Fatalf("resumed at %d execs, want 3000", got)
	}
	resumed.RunExecs(8000)

	a, b := uninterrupted.Stats(), resumed.Stats()
	if a.Execs != b.Execs || a.Edges != b.Edges || a.QueueLen != b.QueueLen {
		t.Fatalf("resumed run diverged: execs %d/%d edges %d/%d queue %d/%d",
			a.Execs, b.Execs, a.Edges, b.Edges, a.QueueLen, b.QueueLen)
	}
	if len(a.Crashes) == 0 {
		t.Fatal("test premise broken: the crashing seed produced no crash")
	}
	if len(a.Crashes) != len(b.Crashes) {
		t.Fatalf("crash tables: %d vs %d", len(a.Crashes), len(b.Crashes))
	}
	for i := range a.Crashes {
		if a.Crashes[i].Key != b.Crashes[i].Key || a.Crashes[i].Count != b.Crashes[i].Count {
			t.Fatalf("crash %d: %+v vs %+v", i, a.Crashes[i], b.Crashes[i])
		}
	}
}

func TestResumeRejectsMismatchedSeed(t *testing.T) {
	f, err := NewFuzzer(demoSource, [][]byte{[]byte("ab")}, Options{Seed: 1, DeterministicRand: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.RunExecs(200)
	ckpt, err := f.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFuzzer(demoSource, [][]byte{[]byte("ab")}, Options{Seed: 2, ResumeFrom: ckpt}); err == nil {
		t.Fatal("resume with a different seed accepted")
	}
}

func TestResilientOptionWrapsClosureX(t *testing.T) {
	f, err := NewFuzzer(demoSource, [][]byte{[]byte("ab")}, Options{Seed: 5, Resilient: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Mechanism() != "closurex-resilient" {
		t.Fatalf("Mechanism = %q", f.Mechanism())
	}
	f.RunExecs(2000)
	st := f.Stats()
	if st.Degraded {
		t.Fatal("healthy target degraded the mechanism")
	}
	if st.Execs < 2000 || st.Edges == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// driftSource makes the stale global observable: without restoration the
// return value climbs with every iteration of the persistent child.
const driftSource = `
int runs;
int main(void) {
	runs++;
	int f = fopen("/input", "r");
	if (!f) abort();
	int a = fgetc(f);
	fclose(f);
	return 100 * runs + a;
}
`

func TestSentinelOptionFlagsNaivePersistence(t *testing.T) {
	f, err := NewFuzzer(driftSource, [][]byte{[]byte("ab")}, Options{
		Mechanism:     "persistent-naive",
		Seed:          6,
		SentinelEvery: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.RunExecs(600)
	if st := f.Stats(); st.Divergences == 0 {
		t.Fatalf("sentinel missed persistent-naive's state pollution: %+v", st)
	}
}

func TestSentinelOptionQuietOnClosureX(t *testing.T) {
	f, err := NewFuzzer(demoSource, [][]byte{[]byte("ab")}, Options{
		Seed:          6,
		SentinelEvery: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.RunExecs(600)
	if st := f.Stats(); st.Divergences != 0 {
		t.Fatalf("false-positive divergences on closurex: %+v", st)
	}
}
