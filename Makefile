GO ?= go

.PHONY: all build test vet race faultcheck lint check bench benchjson clean

all: build

build:
	$(GO) build ./...

# Tier-1: the gate every change must pass.
test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector gate, scoped to the concurrency-bearing packages (the
# parallel campaign fleet, harness, VM, memory): the rest of the suite is
# single-threaded interpreter work that -race only makes slow. The
# parallel tests shrink their exec budgets under the race build tag.
race:
	$(GO) test -race -timeout 15m ./internal/fuzz/ ./internal/harness/ ./internal/vm/ ./internal/mem/

# The fault-injection / resilience suite on its own, verbose: every
# degradation edge (restore failure -> quarantine + rebuild; repeated
# failure -> forkserver fallback; sentinel divergence; checkpoint resume).
faultcheck:
	$(GO) test -v ./internal/faultinject/
	$(GO) test -v -run 'Injected|Fault|Resilient|Restore|Watchdog|Sentinel|Checkpoint|Resume|Degrad|Hang|Stop' \
		./internal/harness/ ./internal/execmgr/ ./internal/fuzz/ .

# Static correctness gate: go vet, the restore-completeness lints over
# every registered target, and the pipeline test suites with the deep
# analysis verifier re-checking the module after every pass (verifyeach).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/closurex-lint -q -target all
	$(GO) test -tags verifyeach ./internal/analysis/ ./internal/passes/ ./internal/core/

check: vet test race faultcheck lint benchjson

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable parallel-scaling numbers: a short sweep over jobs =
# 1, 2, 4, GOMAXPROCS writing BENCH_parallel.json, so throughput scaling
# is tracked as an artifact rather than eyeballed from benchmark logs.
benchjson:
	$(GO) run ./cmd/closurex-bench -parallel-scaling -parallel-execs 20000 -parallel-json BENCH_parallel.json

clean:
	$(GO) clean ./...
