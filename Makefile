GO ?= go

.PHONY: all build test vet race faultcheck lint check bench clean

all: build

build:
	$(GO) build ./...

# Tier-1: the gate every change must pass.
test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The fault-injection / resilience suite on its own, verbose: every
# degradation edge (restore failure -> quarantine + rebuild; repeated
# failure -> forkserver fallback; sentinel divergence; checkpoint resume).
faultcheck:
	$(GO) test -v ./internal/faultinject/
	$(GO) test -v -run 'Injected|Fault|Resilient|Restore|Watchdog|Sentinel|Checkpoint|Resume|Degrad|Hang|Stop' \
		./internal/harness/ ./internal/execmgr/ ./internal/fuzz/ .

# Static correctness gate: go vet, the restore-completeness lints over
# every registered target, and the pipeline test suites with the deep
# analysis verifier re-checking the module after every pass (verifyeach).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/closurex-lint -q -target all
	$(GO) test -tags verifyeach ./internal/analysis/ ./internal/passes/ ./internal/core/

check: vet test race faultcheck lint

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
