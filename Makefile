GO ?= go

.PHONY: all build test vet race faultcheck lint sanitize interproc harness-audit chaos compile transval synth check bench benchjson clean

# Pinned staticcheck release for the lint gate. The gate is unconditional:
# `go run` resolves the pinned version (from the local module cache when
# offline) and the target fails loudly when it cannot, rather than
# silently passing because a binary happened to be absent.
STATICCHECK_VERSION ?= 2025.1

all: build

build:
	$(GO) build ./...

# Tier-1: the gate every change must pass.
test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector gate, scoped to the concurrency-bearing packages (the
# parallel campaign fleet, harness, VM, memory): the rest of the suite is
# single-threaded interpreter work that -race only makes slow. The
# parallel tests shrink their exec budgets under the race build tag.
race:
	$(GO) test -race -timeout 15m ./internal/fuzz/ ./internal/harness/ ./internal/vm/ ./internal/mem/

# The fault-injection / resilience suite on its own, verbose: every
# degradation edge (restore failure -> quarantine + rebuild; repeated
# failure -> forkserver fallback; sentinel divergence; checkpoint resume).
faultcheck:
	$(GO) test -v ./internal/faultinject/
	$(GO) test -v -run 'Injected|Fault|Resilient|Restore|Watchdog|Sentinel|Checkpoint|Resume|Degrad|Hang|Stop' \
		./internal/harness/ ./internal/execmgr/ ./internal/fuzz/ .

# Static correctness gate: go vet, the restore-completeness lints over
# every registered target, and the pipeline test suites with the deep
# analysis verifier re-checking the module after every pass (verifyeach).
lint:
	$(GO) vet ./...
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run ./cmd/closurex-lint -q -target all
	$(GO) test -tags verifyeach ./internal/analysis/ ./internal/passes/ ./internal/core/

# Sanitizer gate: the seeded-defect detection and differential suites, the
# shadow-plane and elision-analysis unit tests, and the strict lint run
# with sanitizer instrumentation armed (CLX111-113 + per-function elision
# report over every registered target).
sanitize:
	$(GO) test -run 'Sanitiz|Shadow|Quarantine|Elision|Elide' . ./internal/mem/ ./internal/harness/ ./internal/passes/ ./internal/core/ ./internal/analysis/sanitize/
	$(GO) run ./cmd/closurex-lint -q -strict -target all -sanitize-report

# Restore-elision gate: the interprocedural analysis unit suites
# (call graph, mod/ref, lifetime, audit), the off-vs-on differential
# (bit-identical coverage/corpus/crashes on every target), the runtime
# audit suite (zero elision drift over hundreds of iterations), and the
# strict lint run with the per-function elision report.
interproc:
	$(GO) test ./internal/analysis/interproc/
	$(GO) test -run 'Interproc|Elision|Elide' ./internal/core/ ./internal/harness/ ./internal/vm/ ./internal/passes/
	$(GO) run ./cmd/closurex-lint -q -target all -interproc-report

# Harness-quality gate: the audit analysis suites (reachability, coverage
# geometry, input dataflow, auto-dictionary) plus the strict audited lint
# run over every registered target — any CLX119-121 finding (dead harness
# surface, degraded coverage geometry, dead dictionary token) fails the
# build. The score cards print so regressions are diagnosable from CI logs.
harness-audit:
	$(GO) test ./internal/analysis/harnessaudit/
	$(GO) test -run 'Dict|Catalog|PreferredProbe|CovMapCells|SeedMirrors' ./internal/fuzz/ ./internal/analysis/ ./internal/passes/ ./internal/core/
	$(GO) run ./cmd/closurex-lint -q -strict -target all -harness-report

# Chaos gate: the shard-supervision fault-injection matrix. Unit level,
# the chaos suite (shard kill -> restart/quarantine, restore corruption ->
# rebuild ladder, corpus delay/drop, hang escalation, torn checkpoint
# writes, elastic resume) runs plain and under -race; end to end, the
# closurex-bench matrix injects each fault class into a real compiled
# target's parallel campaign and gates on completion + coverage superset +
# no goroutine leak.
chaos:
	$(GO) test -run 'Chaos|Supervis|Elastic|TornWrite|ResumeError|ForShard|HealthLog' \
		./internal/fuzz/ ./internal/faultinject/ ./internal/stats/
	$(GO) test -race -timeout 15m -run 'Chaos|Supervis|Elastic|TornWrite|ResumeError' ./internal/fuzz/
	$(GO) run ./cmd/closurex-bench -chaos -chaos-execs 20000 -chaos-json BENCH_chaos.json

# Compiled-tier gate: the interp-vs-compiled differential suites — the
# VM-level matrix in internal/vm/compile (per-seed observables, timeout
# sites, repeat-exec identity) and the campaign-level matrix in
# internal/core (coverage/corpus/crash/hang identity across sanitize,
# interproc and injected-restore-fault modes, fixed-seed determinism) —
# run plain and then under -race, since the compiled program cache is
# shared across shard VMs.
compile:
	$(GO) test -count=1 ./internal/vm/compile/
	$(GO) test -count=1 -run 'Backend|Compiled' ./internal/core/ ./internal/fuzz/
	$(GO) test -race -timeout 15m -count=1 ./internal/vm/compile/

# Translation-validation gate: the transval checker suite (certificate
# obligations, seeded-defect detection, JSON stability) plain and under
# -race (the program cache shares certificates across goroutines), then
# the lint driver certifying every registered target's compiled program
# against the IR (CLX123-127 fail the build).
transval:
	$(GO) test -count=1 ./internal/analysis/transval/
	$(GO) test -race -timeout 15m -count=1 -run 'Transval|Certif' ./internal/analysis/transval/ ./internal/core/
	$(GO) run ./cmd/closurex-lint -q -target all -transval

# Harness-synthesis gate: the synth suite plain and under -race (the
# synthesized targets register into the shared registry and run real
# campaigns), then the all-targets synthesis report — a build or
# certification failure (CLX130) in any synthesized harness fails the
# gate; CLX128/129/131 are advisory and tolerated.
synth:
	$(GO) test -count=1 ./internal/analysis/synth/
	$(GO) test -race -timeout 15m -count=1 -run 'Synth' ./internal/analysis/synth/ ./internal/experiments/ ./internal/core/
	$(GO) run ./cmd/closurex-lint -q -target all -synth

check: vet test race faultcheck lint sanitize interproc harness-audit chaos compile transval synth benchjson

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark artifacts: a short parallel-scaling sweep
# (jobs = 1, 2, 4, GOMAXPROCS -> BENCH_parallel.json), the sanitizer
# overhead sweep (modes off / on / on+elide -> BENCH_sanitizer.json), and
# the restore-elision sweep (elision off vs on per target ->
# BENCH_interproc.json), the harness-audit sweep (auto-dictionary off
# vs on per target -> BENCH_harness.json), and the synthesized-harness
# sweep (manual vs manual+synthesized coverage per target ->
# BENCH_synth.json; any CLX130 fails the bench), so throughput,
# shadow-check cost, restore scope and harness quality are tracked as
# artifacts rather than eyeballed from logs.
# Machine-readable benchmark artifacts (continued): the compiled-tier
# speedup table (interp vs compiled across every registered target, with
# the inline identity cross-check -> BENCH_compile.json), then the
# translation-validation sweep merged into the same envelope (per-target
# certification time + certified surface; uncertifiable target = hard
# failure).
benchjson:
	$(GO) run ./cmd/closurex-bench -parallel-scaling -parallel-execs 20000 -parallel-json BENCH_parallel.json
	$(GO) run ./cmd/closurex-bench -sanitizer-overhead -sanitizer-execs 20000 -sanitizer-json BENCH_sanitizer.json
	$(GO) run ./cmd/closurex-bench -restore-elision -interproc-execs 20000 -interproc-json BENCH_interproc.json
	$(GO) run ./cmd/closurex-bench -dict-gain -dict-execs 20000 -dict-json BENCH_harness.json
	$(GO) run ./cmd/closurex-bench -synth-gain -synth-execs 10000 -synth-json BENCH_synth.json
	$(GO) run ./cmd/closurex-bench -compile-speedup -compile-execs 20000 -compile-json BENCH_compile.json
	$(GO) run ./cmd/closurex-bench -transval -transval-json BENCH_compile.json

clean:
	$(GO) clean ./...
