module closurex

go 1.22
