// Quickstart: compile a MinC target, instrument it with the ClosureX
// pipeline, and fuzz it persistently — all through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"closurex"
)

// source is a small config-string parser with a planted null-pointer
// dereference: "debug=" with an empty value makes it dereference a NULL
// options pointer.
const source = `
int keys_seen;
int debug_level;

int parse_pair(char *s, int len) {
	int eq = -1;
	for (int i = 0; i < len; i++) {
		if (s[i] == '=') { eq = i; break; }
	}
	if (eq <= 0) return 0;
	keys_seen++;
	if (eq == 5 && s[0] == 'd' && s[1] == 'e' && s[2] == 'b' &&
	    s[3] == 'u' && s[4] == 'g') {
		char *val = (char*)0;
		if (eq + 1 < len) val = s + eq + 1;
		debug_level = val[0] - '0';   // BUG: NULL when the value is empty
	}
	return 1;
}

int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int size = fsize(f);
	if (size > 4096) { fclose(f); exit(1); }
	char *buf = (char*)malloc(size + 1);
	if (!buf) exit(1);
	fread(buf, 1, size, f);
	int start = 0;
	for (int i = 0; i <= size; i++) {
		if (i == size || buf[i] == 10) {
			parse_pair(buf + start, i - start);
			start = i + 1;
		}
	}
	free(buf);
	fclose(f);
	return keys_seen;
}
`

func main() {
	seeds := [][]byte{
		[]byte("name=closurex\ndebug=2\nverbose=1\n"),
	}
	f, err := closurex.NewFuzzer(source, seeds, closurex.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	fmt.Println("fuzzing a config parser under the ClosureX mechanism...")
	f.RunFor(3 * time.Second)

	st := f.Stats()
	fmt.Printf("executed %d test cases (%.0f/s) in ONE process image (%d spawns)\n",
		st.Execs, st.ExecsPerSec, st.Spawns)
	fmt.Printf("coverage: %d/%d edges; corpus: %d entries\n", st.Edges, st.TotalEdges, st.QueueLen)
	for _, c := range st.Crashes {
		fmt.Printf("crash: %s after %.2fs, input %q\n", c.Key, c.FirstAt.Seconds(), c.Input)
	}
	if len(st.Crashes) == 0 {
		fmt.Println("no crash found — try a longer run")
	}
}
