// Zeroday-hunt replays the paper's bug-finding story: fuzz the benchmarks
// that carry planted 0-days (gpmf-parser, libbpf, c-blosc2, md4c) under
// both ClosureX and the AFL++ forkserver, and report a Table 7-style
// discovery log showing who found what, and when.
//
//	go run ./examples/zeroday-hunt [-budget 6s]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"closurex"
)

func main() {
	budget := flag.Duration("budget", 6*time.Second, "fuzzing budget per benchmark per mechanism")
	flag.Parse()

	buggy := []string{"gpmf-parser", "libbpf", "c-blosc2", "md4c"}
	type finding struct {
		bench, key string
		at         time.Duration
	}
	found := map[string][]finding{} // mechanism -> findings

	for _, mech := range []string{"closurex", "forkserver"} {
		fmt.Printf("=== mechanism: %s ===\n", mech)
		for _, bench := range buggy {
			f, err := closurex.NewBenchmarkFuzzer(bench, mech, 1)
			if err != nil {
				log.Fatal(err)
			}
			f.RunFor(*budget)
			st := f.Stats()
			fmt.Printf("%-12s %10d execs (%.0f/s), %d unique crashes\n",
				bench, st.Execs, st.ExecsPerSec, len(st.Crashes))
			for _, c := range st.Crashes {
				found[mech] = append(found[mech], finding{bench, c.Key, c.FirstAt})
			}
			f.Close()
		}
	}

	fmt.Println("\n=== discovery log (Table 7 style) ===")
	for _, mech := range []string{"closurex", "forkserver"} {
		fs := found[mech]
		sort.Slice(fs, func(i, j int) bool { return fs[i].at < fs[j].at })
		fmt.Printf("%s found %d bugs:\n", mech, len(fs))
		for _, f := range fs {
			fmt.Printf("  %8.2fs  %-12s %s\n", f.at.Seconds(), f.bench, f.key)
		}
	}
	cx, fk := len(found["closurex"]), len(found["forkserver"])
	switch {
	case cx > fk:
		fmt.Printf("\nClosureX found %d bugs vs the forkserver's %d in the same budget —\n"+
			"the throughput advantage translating into bug discovery, as in the paper.\n", cx, fk)
	case cx == fk:
		fmt.Printf("\nboth mechanisms found %d bugs; compare the discovery times above.\n", cx)
	default:
		fmt.Printf("\nforkserver found more bugs this run (%d vs %d) — unusual; rerun with a larger -budget.\n", fk, cx)
	}
}
