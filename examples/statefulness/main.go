// Statefulness demonstrates why naive persistent fuzzing is incorrect and
// what the ClosureX harness restores — the narrative of the paper's
// Figures 4 and 5 plus the missed-crash / false-crash pathologies of §1.
//
//	go run ./examples/statefulness
package main

import (
	"fmt"
	"log"

	"closurex/internal/core"
	"closurex/internal/experiments"
	"closurex/internal/harness"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

func main() {
	fmt.Println("--- Figure 3: GlobalPass section transformation (md4c) ---")
	out, err := experiments.SectionTransformation("md4c")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	fmt.Println("--- Figures 4 & 5: what the harness restores, live ---")
	heapAndGlobalsWalkthrough()

	fmt.Println("--- Missed and false crashes under naive persistence ---")
	rep, err := experiments.RunStaleStateDemo()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	if rep.Correct() {
		fmt.Println("=> naive persistent fuzzing MISSED a real crash and reported a FALSE one;")
		fmt.Println("   ClosureX caught the real crash and never false-crashed.")
	}

	fmt.Println("\n--- The spectrum: process-management cost per mechanism ---")
	rows, err := experiments.RunSpectrum(512, 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.FormatSpectrum(rows, 512))
}

// heapAndGlobalsWalkthrough drives one gpmf-parser iteration by hand and
// prints the chunk map and global section around the restore, mirroring
// the before/during/after panels of Figures 4 and 5.
func heapAndGlobalsWalkthrough() {
	t := targets.Get("gpmf-parser")
	mod, err := core.Build(t.Short+".c", t.Source, core.ClosureX)
	if err != nil {
		log.Fatal(err)
	}
	v, err := vm.New(mod, vm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	h, err := harness.New(v, harness.FullRestore())
	if err != nil {
		log.Fatal(err)
	}

	snapBefore, _ := v.SnapshotSection("closure_global_section")
	fmt.Printf("before execution: %d live chunks, %d open FDs, %d global bytes snapshotted\n",
		v.Heap.LiveChunks(), v.FS.OpenCount(), len(snapBefore))

	// An input that leaks: the overheated-device early return keeps its
	// buffer and file handle.
	leaky := append([]byte("TMPC"), 'l', 4, 0, 1, 0, 3, 13, 64)
	v.SetInput(leaky)
	res := v.Call("target_main")
	fmt.Printf("during/after target_main (ret=%d): %d live chunks, %d open FDs — the target leaked\n",
		res.Ret, v.Heap.LiveChunks(), v.FS.OpenCount())
	dirty := 0
	snapAfter, _ := v.SnapshotSection("closure_global_section")
	for i := range snapAfter {
		if snapAfter[i] != snapBefore[i] {
			dirty++
		}
	}
	fmt.Printf("global section: %d bytes modified by the test case\n", dirty)

	h.Restore()
	snapRestored, _ := v.SnapshotSection("closure_global_section")
	same := true
	for i := range snapRestored {
		if snapRestored[i] != snapBefore[i] {
			same = false
		}
	}
	fmt.Printf("after restore: %d live chunks, %d open FDs, globals identical to snapshot: %v\n",
		v.Heap.LiveChunks(), v.FS.OpenCount(), same)
	st := h.Stats()
	fmt.Printf("harness stats: freed %d chunks, closed %d FDs, copied %d global bytes\n\n",
		st.ChunksFreed, st.FDsClosed, st.GlobalBytes)
}
