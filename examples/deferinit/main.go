// Deferinit demonstrates the paper's §7.2 future-work extension,
// implemented here as DeferInitPass: a target whose expensive,
// input-independent initialization is hoisted out of the fuzzing loop and
// run once by the harness, with the resulting heap chunks and descriptors
// marked persistent and the global snapshot taken afterwards.
//
//	go run ./examples/deferinit
package main

import (
	"fmt"
	"log"
	"time"

	"closurex"
)

// source builds a large CRC table and loads a config file during
// initialization; per test case it only hashes the input against the
// table. Without hoisting, the table rebuild dominates every iteration.
const source = `
int crc_table[2048];
int config_flags;
int inits_run;

void closurex_init(void) {
	inits_run++;
	for (int i = 0; i < 2048; i++) {
		int v = i;
		for (int j = 0; j < 8; j++) {
			v = (v & 1) ? ((v >> 1) ^ 0xedb88320) : (v >> 1);
		}
		crc_table[i] = v;
	}
	int cfg = fopen("/config", "r");
	if (cfg) {
		config_flags = fgetc(cfg);
		// left open deliberately: an initialization-time handle the
		// harness rewinds instead of closing
	}
}

int main(void) {
	closurex_init();
	int f = fopen("/input", "r");
	if (!f) abort();
	int h = 0;
	int c = fgetc(f);
	while (c >= 0) {
		h = crc_table[(h ^ c) & 2047] ^ (h >> 8);
		c = fgetc(f);
	}
	fclose(f);
	return h & 0x7fffffff;
}
`

func run(deferInit bool) (execsPerSec float64) {
	f, err := closurex.NewFuzzer(source, [][]byte{[]byte("seed input")}, closurex.Options{
		Seed:      7,
		DeferInit: deferInit,
		Files:     map[string][]byte{"/config": []byte{0x2a}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	f.RunFor(2 * time.Second)
	return f.Stats().ExecsPerSec
}

func main() {
	fmt.Println("target: per-iteration CRC-table rebuild (2048 x 8 rounds) + config load")
	base := run(false)
	fmt.Printf("init re-executed every iteration: %8.0f execs/s\n", base)
	hoisted := run(true)
	fmt.Printf("init hoisted by DeferInitPass:    %8.0f execs/s  (%.2fx)\n",
		hoisted, hoisted/base)
}
