// Benchmarks regenerating the paper's evaluation artifacts, one family per
// table/figure. ns/op is the per-test-case cost, so Table 5's speedup for
// a target is BenchmarkTable5/<target>/forkserver ÷ .../closurex. Custom
// metrics report coverage (Table 6) and executions-to-bug (Table 7).
//
//	go test -bench=. -benchmem
//
// For the full formatted tables (with Mann-Whitney significance over
// repeated trials) use: go run ./cmd/closurex-bench -table all
package closurex

import (
	"fmt"
	"runtime"
	"testing"

	"closurex/internal/core"
	"closurex/internal/execmgr"
	"closurex/internal/experiments"
	"closurex/internal/fuzz"
	"closurex/internal/harness"
	"closurex/internal/targets"
	"closurex/internal/vm"
)

// benchInstance builds a (target, mechanism) campaign for benchmarking.
func benchInstance(b *testing.B, targetName, mech string) *core.Instance {
	b.Helper()
	t := targets.Get(targetName)
	if t == nil {
		b.Fatalf("unknown target %s", targetName)
	}
	inst, err := core.NewInstance(t, mech, core.InstanceOptions{TrialSeed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(inst.Close)
	return inst
}

// BenchmarkTable5 measures the test-case execution rate of every Table 4
// benchmark under ClosureX and the AFL++ forkserver. ns/op = time per
// fuzzed test case, including mutation and coverage classification.
func BenchmarkTable5(b *testing.B) {
	for _, tg := range targets.All() {
		for _, mech := range []string{"closurex", "forkserver"} {
			b.Run(tg.Name+"/"+mech, func(b *testing.B) {
				inst := benchInstance(b, tg.Name, mech)
				inst.Campaign.RunExecs(64) // bootstrap seeds outside timing
				b.ReportAllocs()
				b.ResetTimer()
				var done int64
				for done < int64(b.N) {
					done += inst.Campaign.Step()
				}
				b.StopTimer()
				execsPerSec := float64(b.N) / b.Elapsed().Seconds()
				b.ReportMetric(execsPerSec, "execs/s")
			})
		}
	}
}

// BenchmarkTable6 runs a fixed-size campaign per benchmark and mechanism
// and reports edge coverage as a custom metric (edges and coverage %).
func BenchmarkTable6(b *testing.B) {
	const campaignExecs = 20000
	for _, tg := range targets.All() {
		for _, mech := range []string{"closurex", "forkserver"} {
			b.Run(tg.Name+"/"+mech, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					inst := benchInstance(b, tg.Name, mech)
					inst.Campaign.RunExecs(campaignExecs)
					cov := 100 * float64(inst.Campaign.Edges()) / float64(inst.TotalEdges())
					b.ReportMetric(float64(inst.Campaign.Edges()), "edges")
					b.ReportMetric(cov, "cov%")
				}
			})
		}
	}
}

// BenchmarkTable7 measures executions until the first planted bug is
// found, per buggy benchmark and mechanism (execs-to-bug metric; lower is
// better, and wall-clock time-to-bug is ns/op x execs-to-bug).
func BenchmarkTable7(b *testing.B) {
	const cap = 400000
	for _, tgName := range []string{"gpmf-parser", "libbpf", "c-blosc2", "md4c"} {
		for _, mech := range []string{"closurex", "forkserver"} {
			b.Run(tgName+"/"+mech, func(b *testing.B) {
				var totalExecs float64
				found := 0
				for i := 0; i < b.N; i++ {
					inst := benchInstance(b, tgName, mech)
					for inst.Campaign.Execs() < cap && len(inst.Campaign.Crashes()) == 0 {
						inst.Campaign.Step()
					}
					if len(inst.Campaign.Crashes()) > 0 {
						totalExecs += float64(inst.Campaign.Execs())
						found++
					}
				}
				if found > 0 {
					b.ReportMetric(totalExecs/float64(found), "execs-to-bug")
					b.ReportMetric(float64(found)/float64(b.N), "found-ratio")
				}
			})
		}
	}
}

// BenchmarkFigSpectrum measures raw per-execution cost of all four
// mechanisms on a trivial target with a 512-page image — the paper's
// motivating spectrum (fresh >> forkserver >> persistent ~= closurex).
func BenchmarkFigSpectrum(b *testing.B) {
	const src = `
int runs;
int main(void) {
	runs++;
	int f = fopen("/input", "r");
	if (!f) abort();
	int c = fgetc(f);
	fclose(f);
	return c;
}
`
	for _, mech := range execmgr.Names() {
		b.Run(mech, func(b *testing.B) {
			mod, err := core.Build("spectrum.c", src, core.VariantFor(mech))
			if err != nil {
				b.Fatal(err)
			}
			m, err := execmgr.New(mech, execmgr.Config{Module: mod, ImagePages: 512})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			input := []byte{42}
			for i := 0; i < 8; i++ {
				m.Execute(input)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Execute(input)
			}
		})
	}
}

// BenchmarkParallelScaling measures aggregate fuzzing throughput of the
// parallel campaign executor at increasing shard counts (jobs = 1, 2, 4,
// GOMAXPROCS). Each shard owns a full process image + harness and merges
// coverage into the shared global bitmap; execs/s is the aggregate rate
// across the fleet. On a single-CPU host the curve is flat (sharding adds
// no overhead); on multi-core hosts it scales with cores.
func BenchmarkParallelScaling(b *testing.B) {
	jobsList := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		jobsList = append(jobsList, p)
	}
	for _, jobs := range jobsList {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			tg := targets.Get("gpmf-parser")
			inst, err := core.NewInstance(tg, "closurex", core.InstanceOptions{
				TrialSeed: 1, Jobs: jobs,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(inst.Close)
			d := inst.Driver()
			d.RunExecs(256) // bootstrap seeds + warm every shard outside timing
			base := d.Execs()
			b.ResetTimer()
			d.RunExecs(base + int64(b.N))
			b.StopTimer()
			execsPerSec := float64(d.Execs()-base) / b.Elapsed().Seconds()
			b.ReportMetric(execsPerSec, "execs/s")
		})
	}
}

// BenchmarkRestoreDirtyTracking isolates the dirty-tracking incremental
// restore against the original full byte-copy on a 512-page (2 MiB)
// closure_global_section of which each execution dirties a single page.
// The restored state is byte-identical either way (the watchdog Verify
// checks it below); only the copy-back bandwidth differs. restore-B/op is
// the per-iteration number of section bytes actually copied.
func BenchmarkRestoreDirtyTracking(b *testing.B) {
	// 262144 8-byte ints = 2 MiB = 512 pages of writable globals.
	const src = `
int big[262144];
int touched;
int main(void) {
	int f = fopen("/input", "r");
	if (!f) abort();
	int c = fgetc(f);
	fclose(f);
	if (c < 0) c = 0;
	big[(c * 331) & 262143] = c + 1;
	touched++;
	return 0;
}
`
	for name, incremental := range map[string]bool{
		"incremental": true,
		"full-copy":   false,
	} {
		b.Run(name, func(b *testing.B) {
			mod, err := core.Build("dirty.c", src, core.ClosureX)
			if err != nil {
				b.Fatal(err)
			}
			v, err := vm.New(mod, vm.Options{})
			if err != nil {
				b.Fatal(err)
			}
			opts := harness.FullRestore()
			opts.IncrementalRestore = incremental
			h, err := harness.New(v, opts)
			if err != nil {
				b.Fatal(err)
			}
			if h.Incremental() != incremental {
				b.Fatalf("incremental restore armed=%v, want %v", h.Incremental(), incremental)
			}
			input := []byte{42}
			for i := 0; i < 8; i++ {
				h.RunOne(input)
			}
			before := h.Stats().GlobalBytes
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.RunOne(input)
			}
			b.StopTimer()
			copied := h.Stats().GlobalBytes - before
			b.ReportMetric(float64(copied)/float64(b.N), "restore-B/op")
			if err := h.Verify(); err != nil {
				b.Fatalf("restored state drifted: %v", err)
			}
		})
	}
}

// BenchmarkFigRestore breaks down the ClosureX harness's restoration cost
// (Figures 4 and 5): one leaky gpmf iteration with each restoration step
// isolated.
func BenchmarkFigRestore(b *testing.B) {
	configs := map[string]harness.Options{
		"full":         harness.FullRestore(),
		"globals-only": {RestoreGlobals: true},
		"heap-only":    {ResetHeap: true},
		"files-only":   {CloseFiles: true},
		"none":         {},
	}
	leaky := append([]byte("TMPC"), 'l', 4, 0, 1, 0, 3, 13, 64)
	for name, opts := range configs {
		opts := opts
		b.Run(name, func(b *testing.B) {
			tg := targets.Get("gpmf-parser")
			mod, err := core.Build(tg.Short+".c", tg.Source, core.ClosureX)
			if err != nil {
				b.Fatal(err)
			}
			v, err := vm.New(mod, vm.Options{})
			if err != nil {
				b.Fatal(err)
			}
			h, err := harness.New(v, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.RunOne(leaky)
				if !opts.ResetHeap && v.Heap.LiveChunks() > 4096 {
					// Without heap restoration leaks accumulate; reset out
					// of band so the benchmark measures steady state.
					b.StopTimer()
					v.Heap.Reset()
					b.StartTimer()
				}
				if !opts.CloseFiles && v.FS.OpenCount() > 48 {
					b.StopTimer()
					for _, fd := range v.FS.LeakedFDs() {
						_ = v.FS.Close(fd)
					}
					b.StartTimer()
				}
			}
		})
	}
}

// BenchmarkAblationDeferInit measures the future-work DeferInitPass: a
// target with an expensive input-independent init phase, with the init
// re-executed per iteration vs hoisted out of the loop.
func BenchmarkAblationDeferInit(b *testing.B) {
	const src = `
int table[4096];
void closurex_init(void) {
	for (int i = 0; i < 4096; i++) table[i] = (i * 2654435761) & 0xffff;
}
int main(void) {
	closurex_init();
	int f = fopen("/input", "r");
	if (!f) abort();
	int c = fgetc(f);
	fclose(f);
	if (c < 0) c = 0;
	return table[c & 4095] & 255;
}
`
	for name, variant := range map[string]core.Variant{
		"init-per-iteration": core.ClosureX,
		"init-hoisted":       core.ClosureXDeferInit,
	} {
		b.Run(name, func(b *testing.B) {
			mod, err := core.Build("deferinit.c", src, variant)
			if err != nil {
				b.Fatal(err)
			}
			m, err := execmgr.New("closurex", execmgr.Config{Module: mod})
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			input := []byte{7}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Execute(input)
			}
		})
	}
}

// BenchmarkCorrectnessProbe measures the §6.1.4 verification machinery
// itself: one fresh ground-truth probe plus one polluted ClosureX probe.
func BenchmarkCorrectnessProbe(b *testing.B) {
	rep, err := experiments.RunCorrectness("zlib", experiments.CorrectnessOptions{
		QueueExecs: 500, Pollution: 10, MaxCases: 2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if rep.DataflowMismatches != 0 {
		b.Fatal("correctness violated in benchmark setup")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCorrectness("zlib", experiments.CorrectnessOptions{
			QueueExecs: 500, Pollution: 10, MaxCases: 2, Seed: uint64(i + 2),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFuzzerInternals tracks the shared fuzzing-loop costs that are
// identical across mechanisms (mutation and map classification).
func BenchmarkFuzzerInternals(b *testing.B) {
	b.Run("havoc", func(b *testing.B) {
		m := fuzz.NewMutator(fuzz.NewRNG(1), 4096)
		input := make([]byte, 256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Havoc(input)
		}
	})
	b.Run("bitmap-update", func(b *testing.B) {
		bm := fuzz.NewBitmap()
		trace := make([]byte, fuzz.MapSize)
		for i := 0; i < 200; i++ {
			trace[i*13%fuzz.MapSize] = byte(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			trace[i%200] = 1
			bm.Update(trace)
		}
	})
}
